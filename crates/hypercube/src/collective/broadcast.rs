//! One-to-all broadcast within subcubes (spanning binomial tree).

use super::{allport, check_dims};
use crate::cost::{Algo, Collective};
use crate::machine::Hypercube;
use crate::slab::NodeSlab;
use crate::topology::NodeId;

/// Broadcast over a flat [`NodeSlab`]: every segment ends holding a copy
/// of its subcube root's segment.
///
/// The spanning-binomial-tree *schedule* is charged step by step from
/// segment lengths alone (every informed sender holds exactly the root's
/// buffer, so each step's load is known analytically); the data is then
/// placed in **one** pass instead of being recopied at every hop. Same
/// simulated clock, counters, and fault interaction as the hop-by-hop
/// seed implementation ([`super::reference::broadcast`]), `k` times less
/// host copying.
///
/// # Panics
/// Panics if `dims` is invalid or `root_coord >= 2^{|dims|}`.
pub fn broadcast_slab<T: Copy>(
    hc: &mut Hypercube,
    slab: &mut NodeSlab<T>,
    dims: &[u32],
    root_coord: usize,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert!(root_coord < (1usize << k), "root coordinate out of range");
    assert_eq!(slab.p(), cube.nodes());
    if k == 0 {
        return;
    }

    // Each node's subcube root and that root's buffer length — the only
    // payload any informed node ever holds.
    let root_of: Vec<usize> =
        (0..slab.p()).map(|node| cube.with_coords(node, root_coord, dims)).collect();

    let root_len = root_of.iter().map(|&r| slab.len_of(r)).max().unwrap_or(0);
    match hc.choose_algo(Collective::Broadcast, k, root_len) {
        Algo::SinglePort => {
            for (j, &d) in dims.iter().enumerate() {
                let bit = 1usize << j;
                let mut transfers: Vec<(NodeId, NodeId)> = Vec::new();
                let mut max_len = 0usize;
                let mut total: u64 = 0;
                for node in cube.iter_nodes() {
                    let c = cube.extract_coords(node, dims);
                    let x = c ^ root_coord;
                    if x < bit {
                        let partner = cube.neighbor(node, d);
                        let len = slab.len_of(root_of[node]);
                        max_len = max_len.max(len);
                        total += len as u64;
                        transfers.push((node, partner));
                    }
                }
                hc.charge_exchange_step(&transfers, max_len, total);
            }
        }
        Algo::AllPort { chunks } => {
            let total: u64 = root_of
                .iter()
                .enumerate()
                .filter(|&(node, &r)| node != r)
                .map(|(_, &r)| slab.len_of(r) as u64)
                .sum();
            allport::charge(hc, Collective::Broadcast, k, root_len, chunks, total);
        }
    }

    let total_out: usize = root_of.iter().map(|&r| slab.len_of(r)).sum();
    let mut out = NodeSlab::with_capacity(slab.p(), total_out);
    for &root in &root_of {
        out.push_seg(&slab[root]);
    }
    slab.swap(&mut out);
}

/// Broadcast, within every subcube spanned by `dims`, the buffer of the
/// node at subcube coordinate `root_coord` to all other subcube members
/// (overwriting their buffers).
///
/// Runs the classic spanning-binomial-tree schedule: `|dims|` supersteps,
/// step `j` doubling the set of informed nodes along `dims[j]`. Time
/// `|dims| * (alpha + beta * L)` for buffers of length `L` — the
/// one-port-optimal start-up count. Thin adapter over
/// [`broadcast_slab`].
///
/// # Panics
/// Panics if `dims` is invalid or `root_coord >= 2^{|dims|}`.
pub fn broadcast<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    root_coord: usize,
) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    broadcast_slab(hc, &mut slab, dims, root_coord);
    slab.write_nested(locals);
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn broadcast_whole_cube() {
        let mut hc = unit_machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let mut locals = hc.locals_from_fn(|n| if n == 0 { vec![1.0, 2.0, 3.0] } else { vec![] });
        broadcast(&mut hc, &mut locals, &dims, 0);
        for buf in &locals {
            assert_eq!(buf, &vec![1.0, 2.0, 3.0]);
        }
        assert_eq!(hc.counters().message_steps, 4, "d supersteps");
        assert_eq!(hc.elapsed_us(), 4.0 * (1.0 + 3.0));
    }

    #[test]
    fn broadcast_nonzero_root() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let root_coord = 5usize;
        let mut locals = hc.locals_from_fn(|n| if n == 5 { vec![9u32] } else { vec![0] });
        broadcast(&mut hc, &mut locals, &dims, root_coord);
        for buf in &locals {
            assert_eq!(buf, &vec![9u32]);
        }
    }

    #[test]
    fn broadcast_within_row_subcubes_only() {
        // Cube of dim 4 seen as a 4x4 grid: dims {0,1} = columns within a
        // row, dims {2,3} = rows. Broadcast along {0,1} from coord 0
        // spreads each row-leader's value across its row only.
        let mut hc = unit_machine(4);
        let row_dims = [0u32, 1];
        let mut locals = hc.locals_from_fn(|n| vec![(n >> 2) as u32 * 100]); // row id * 100
                                                                             // Give non-leaders junk to prove it is overwritten.
        for n in hc.cube().iter_nodes() {
            if hc.cube().extract_coords(n, &row_dims) != 0 {
                locals[n] = vec![u32::MAX];
            }
        }
        broadcast(&mut hc, &mut locals, &row_dims, 0);
        for n in hc.cube().iter_nodes() {
            let row = n >> 2;
            assert_eq!(locals[n], vec![row as u32 * 100], "node {n}");
        }
        assert_eq!(hc.counters().message_steps, 2);
    }

    #[test]
    fn broadcast_empty_dims_is_noop() {
        let mut hc = unit_machine(3);
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        let before = locals.clone();
        broadcast(&mut hc, &mut locals, &[], 0);
        assert_eq!(locals, before);
        assert_eq!(hc.elapsed_us(), 0.0);
    }

    #[test]
    fn broadcast_noncontiguous_dims() {
        let mut hc = unit_machine(5);
        let dims = [1u32, 4];
        // Roots: nodes with bits 1 and 4 equal to root_coord=0b10 -> bit1=0, bit4=1.
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        broadcast(&mut hc, &mut locals, &dims, 0b10);
        for n in hc.cube().iter_nodes() {
            let root = hc.cube().with_coords(n, 0b10, &dims);
            assert_eq!(locals[n], vec![root], "node {n} gets its subcube root's value");
        }
    }

    #[test]
    fn slab_broadcast_matches_reference_with_ragged_roots() {
        let mut hc1 = unit_machine(4);
        let dims = [0u32, 2];
        let mut a = hc1.locals_from_fn(|n| vec![n as u64; (n % 3) + 1]);
        let mut b = a.clone();
        super::super::reference::broadcast(&mut hc1, &mut a, &dims, 1);
        let mut hc2 = unit_machine(4);
        broadcast(&mut hc2, &mut b, &dims, 1);
        assert_eq!(a, b);
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
    }

    #[test]
    #[should_panic(expected = "root coordinate out of range")]
    fn bad_root_panics() {
        let mut hc = unit_machine(3);
        let mut locals: Vec<Vec<u8>> = hc.empty_locals();
        broadcast(&mut hc, &mut locals, &[0, 1], 4);
    }
}
