//! All-to-all personalized communication within subcubes.

use super::check_dims;
use crate::machine::Hypercube;

/// An in-flight item: `(src_coord, dst_coord, payload)`.
type InFlightItem<T> = (usize, usize, Vec<T>);

/// All-to-all personalized exchange within every subcube spanned by
/// `dims`: on entry, member `s` holds `send[s][c]` = the block bound for
/// coordinate `c` (a `Vec` of length `2^{|dims|}` per node); on return,
/// member `c` holds the blocks from every source, indexed by source
/// coordinate.
///
/// Standard hypercube algorithm: `|dims|` supersteps; in step `j` each
/// node forwards to its `dims[j]` neighbour every in-flight block whose
/// destination differs in coordinate bit `j`. Each step moves half of
/// each node's data, so time is `|dims| * (alpha + beta * B * 2^{k-1})`
/// for uniform block size `B` — the classic `O(B p lg p / 2)` transfer
/// volume (Johnsson & Ho TR-610).
pub fn alltoall<T>(hc: &mut Hypercube, send: Vec<Vec<Vec<T>>>, dims: &[u32]) -> Vec<Vec<Vec<T>>> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    let blocks_per_node = 1usize << k;
    assert_eq!(send.len(), cube.nodes());

    let mut in_flight: Vec<Vec<InFlightItem<T>>> = Vec::with_capacity(cube.nodes());
    for (node, blocks) in send.into_iter().enumerate() {
        assert_eq!(
            blocks.len(),
            blocks_per_node,
            "node {node}: need one block per destination coordinate"
        );
        let src = cube.extract_coords(node, dims);
        in_flight
            .push(blocks.into_iter().enumerate().map(|(dst, data)| (src, dst, data)).collect());
    }

    for j in 0..k {
        let bit = 1usize << j;
        let chan = 1usize << dims[j];
        let mut max_fwd = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        // (destination node, in-flight item)
        let mut moved: Vec<(usize, InFlightItem<T>)> = Vec::new();
        for node in cube.iter_nodes() {
            let my_c = cube.extract_coords(node, dims);
            let held = std::mem::take(&mut in_flight[node]);
            let mut stay = Vec::with_capacity(held.len());
            let mut fwd_elems = 0usize;
            for item in held {
                if (item.1 ^ my_c) & bit != 0 {
                    fwd_elems += item.2.len();
                    moved.push((node ^ chan, item));
                } else {
                    stay.push(item);
                }
            }
            in_flight[node] = stay;
            if fwd_elems > 0 {
                pairs.push((node, node ^ chan));
            }
            max_fwd = max_fwd.max(fwd_elems);
            total += fwd_elems as u64;
        }
        for (dst_node, item) in moved {
            in_flight[dst_node].push(item);
        }
        hc.charge_exchange_step(&pairs, max_fwd, total);
    }

    // Reassemble: at each node, blocks indexed by source coordinate.
    in_flight
        .into_iter()
        .map(|items| {
            let mut slots: Vec<Option<Vec<T>>> = (0..blocks_per_node).map(|_| None).collect();
            for (src, _dst, data) in items {
                debug_assert!(slots[src].is_none(), "duplicate block from source {src}");
                slots[src] = Some(data);
            }
            slots.into_iter().map(|s| s.expect("one block from every source")).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn alltoall_full_cube_transposes_block_matrix() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        // send[s][c] = [s*8 + c]
        let send: Vec<Vec<Vec<u32>>> =
            (0..8).map(|s| (0..8).map(|c| vec![(s * 8 + c) as u32]).collect()).collect();
        let recv = alltoall(&mut hc, send, &dims);
        for c in 0..8 {
            for s in 0..8 {
                assert_eq!(recv[c][s], vec![(s * 8 + c) as u32], "dst {c} src {s}");
            }
        }
        assert_eq!(hc.counters().message_steps, 3);
        // Each step forwards exactly half of each node's 8 blocks.
        assert_eq!(hc.elapsed_us(), 3.0 * (1.0 + 4.0));
    }

    #[test]
    fn alltoall_variable_block_sizes() {
        let mut hc = unit_machine(2);
        let dims = [0u32, 1];
        let send: Vec<Vec<Vec<u8>>> =
            (0..4).map(|s| (0..4).map(|c| vec![s as u8; c]).collect()).collect();
        let recv = alltoall(&mut hc, send, &dims);
        for c in 0..4 {
            for s in 0..4 {
                assert_eq!(recv[c][s], vec![s as u8; c], "dst {c} src {s}");
            }
        }
    }

    #[test]
    fn alltoall_within_rows_only() {
        // dim-4 cube as 4x4 grid; exchange within rows (dims {0,1}).
        let mut hc = unit_machine(4);
        let dims = [0u32, 1];
        let send: Vec<Vec<Vec<usize>>> =
            (0..16).map(|n| (0..4).map(|c| vec![n * 10 + c]).collect()).collect();
        let recv = alltoall(&mut hc, send, &dims);
        for n in 0..16usize {
            let row_base = n & !0b11;
            let my_c = n & 0b11;
            for s in 0..4usize {
                let src_node = row_base | s;
                assert_eq!(recv[n][s], vec![src_node * 10 + my_c], "node {n} from {s}");
            }
        }
    }

    #[test]
    fn alltoall_empty_dims_returns_own_block() {
        let mut hc = unit_machine(2);
        let send: Vec<Vec<Vec<u8>>> = (0..4).map(|n| vec![vec![n as u8]]).collect();
        let recv = alltoall(&mut hc, send, &[]);
        for n in 0..4 {
            assert_eq!(recv[n], vec![vec![n as u8]]);
        }
        assert_eq!(hc.elapsed_us(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one block per destination")]
    fn wrong_block_count_panics() {
        let mut hc = unit_machine(2);
        let send: Vec<Vec<Vec<u8>>> = (0..4).map(|_| vec![vec![0u8]]).collect();
        let _ = alltoall(&mut hc, send, &[0, 1]);
    }
}
