//! All-to-all personalized communication within subcubes.

use super::check_dims;
use crate::machine::Hypercube;
use crate::slab::SegSlab;

/// All-to-all personalized exchange over a flat [`SegSlab`]: on entry,
/// the member at coordinate `s` holds segment `c` = the block bound for
/// coordinate `c`; on return, the member at coordinate `c` holds the
/// blocks from every source, indexed by source coordinate.
///
/// The standard hypercube store-and-forward schedule (step `j` forwards
/// every in-flight block whose destination differs in coordinate bit
/// `j`) is charged **analytically**: at entry to step `j` the node at
/// coordinate `c` holds exactly the blocks `(s, d)` with `s ≡ c` on
/// coordinate bits `≥ j` and `d ≡ c` on bits `< j`, so each step's
/// channel loads follow from the original block lengths without moving
/// anything. The final placement — `out[c][s] = send[s][c]` within each
/// subcube — is one pass. Same clock, counters, and fault interaction as
/// [`super::reference::alltoall`], but `O(total)` host copying instead
/// of `O(total * |dims| / 2)`.
pub fn alltoall_slab<T: Copy>(hc: &mut Hypercube, send: &SegSlab<T>, dims: &[u32]) -> SegSlab<T> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    let blocks_per_node = 1usize << k;
    assert_eq!(send.p(), cube.nodes());
    assert_eq!(send.nseg(), blocks_per_node, "need one block per destination coordinate");

    for j in 0..k {
        let bit = 1usize << j;
        let chan = 1usize << dims[j];
        let low_mask = bit - 1;
        let mut max_fwd = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            let my_c = cube.extract_coords(node, dims);
            // Held blocks (s, d): s ≡ my_c on bits >= j, d ≡ my_c on
            // bits < j. Forwarded now: those whose d bit j differs.
            let mut fwd_elems = 0usize;
            for s_low in 0..bit {
                let s = (my_c & !low_mask) | s_low;
                let src_node = cube.with_coords(node, s, dims);
                for d_high in 0..(1usize << (k - j - 1)) {
                    let d = (my_c & low_mask) | ((my_c ^ bit) & bit) | (d_high << (j + 1));
                    fwd_elems += send.seg_len(src_node, d);
                }
            }
            if fwd_elems > 0 {
                pairs.push((node, node ^ chan));
            }
            max_fwd = max_fwd.max(fwd_elems);
            total += fwd_elems as u64;
        }
        hc.charge_exchange_step(&pairs, max_fwd, total);
    }

    // One placement pass: at each node, blocks indexed by source coord.
    let mut out = SegSlab::with_capacity(blocks_per_node, cube.nodes(), send.total_len());
    for node in cube.iter_nodes() {
        let my_c = cube.extract_coords(node, dims);
        for s in 0..blocks_per_node {
            out.push_seg(send.seg(cube.with_coords(node, s, dims), my_c));
        }
    }
    out
}

/// All-to-all personalized exchange within every subcube spanned by
/// `dims`: on entry, member `s` holds `send[s][c]` = the block bound for
/// coordinate `c` (a `Vec` of length `2^{|dims|}` per node); on return,
/// member `c` holds the blocks from every source, indexed by source
/// coordinate.
///
/// Standard hypercube algorithm: `|dims|` supersteps; in step `j` each
/// node forwards to its `dims[j]` neighbour every in-flight block whose
/// destination differs in coordinate bit `j`. Each step moves half of
/// each node's data, so time is `|dims| * (alpha + beta * B * 2^{k-1})`
/// for uniform block size `B` — the classic `O(B p lg p / 2)` transfer
/// volume (Johnsson & Ho TR-610). Thin adapter over [`alltoall_slab`].
pub fn alltoall<T: Copy>(
    hc: &mut Hypercube,
    send: Vec<Vec<Vec<T>>>,
    dims: &[u32],
) -> Vec<Vec<Vec<T>>> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let blocks_per_node = 1usize << dims.len();
    assert_eq!(send.len(), cube.nodes());
    for (node, blocks) in send.iter().enumerate() {
        assert_eq!(
            blocks.len(),
            blocks_per_node,
            "node {node}: need one block per destination coordinate"
        );
    }
    let slab = SegSlab::from_nested(&send, blocks_per_node);
    alltoall_slab(hc, &slab, dims).to_nested()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn alltoall_full_cube_transposes_block_matrix() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        // send[s][c] = [s*8 + c]
        let send: Vec<Vec<Vec<u32>>> =
            (0..8).map(|s| (0..8).map(|c| vec![(s * 8 + c) as u32]).collect()).collect();
        let recv = alltoall(&mut hc, send, &dims);
        for c in 0..8 {
            for s in 0..8 {
                assert_eq!(recv[c][s], vec![(s * 8 + c) as u32], "dst {c} src {s}");
            }
        }
        assert_eq!(hc.counters().message_steps, 3);
        // Each step forwards exactly half of each node's 8 blocks.
        assert_eq!(hc.elapsed_us(), 3.0 * (1.0 + 4.0));
    }

    #[test]
    fn alltoall_variable_block_sizes() {
        let mut hc = unit_machine(2);
        let dims = [0u32, 1];
        let send: Vec<Vec<Vec<u8>>> =
            (0..4).map(|s| (0..4).map(|c| vec![s as u8; c]).collect()).collect();
        let recv = alltoall(&mut hc, send, &dims);
        for c in 0..4 {
            for s in 0..4 {
                assert_eq!(recv[c][s], vec![s as u8; c], "dst {c} src {s}");
            }
        }
    }

    #[test]
    fn alltoall_within_rows_only() {
        // dim-4 cube as 4x4 grid; exchange within rows (dims {0,1}).
        let mut hc = unit_machine(4);
        let dims = [0u32, 1];
        let send: Vec<Vec<Vec<usize>>> =
            (0..16).map(|n| (0..4).map(|c| vec![n * 10 + c]).collect()).collect();
        let recv = alltoall(&mut hc, send, &dims);
        for n in 0..16usize {
            let row_base = n & !0b11;
            let my_c = n & 0b11;
            for s in 0..4usize {
                let src_node = row_base | s;
                assert_eq!(recv[n][s], vec![src_node * 10 + my_c], "node {n} from {s}");
            }
        }
    }

    #[test]
    fn alltoall_empty_dims_returns_own_block() {
        let mut hc = unit_machine(2);
        let send: Vec<Vec<Vec<u8>>> = (0..4).map(|n| vec![vec![n as u8]]).collect();
        let recv = alltoall(&mut hc, send, &[]);
        for n in 0..4 {
            assert_eq!(recv[n], vec![vec![n as u8]]);
        }
        assert_eq!(hc.elapsed_us(), 0.0);
    }

    #[test]
    fn slab_alltoall_matches_reference_on_ragged_blocks() {
        use super::super::reference;
        let dims = [1u32, 2];
        let send: Vec<Vec<Vec<u16>>> = (0..8)
            .map(|s| (0..4).map(|c| vec![(s * 10 + c) as u16; (s + c) % 3]).collect())
            .collect();
        let mut hc1 = unit_machine(3);
        let a = reference::alltoall(&mut hc1, send.clone(), &dims);
        let mut hc2 = unit_machine(3);
        let b = alltoall(&mut hc2, send, &dims);
        assert_eq!(a, b);
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
    }

    #[test]
    #[should_panic(expected = "one block per destination")]
    fn wrong_block_count_panics() {
        let mut hc = unit_machine(2);
        let send: Vec<Vec<Vec<u8>>> = (0..4).map(|_| vec![vec![0u8]]).collect();
        let _ = alltoall(&mut hc, send, &[0, 1]);
    }
}
