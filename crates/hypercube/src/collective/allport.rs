//! All-port schedule plumbing shared by the slab collectives.
//!
//! The all-port engine follows the repo's charge-then-place discipline:
//! the *data movement* of every collective is performed by the same code
//! in the same combine order regardless of schedule, so payloads are
//! bit-identical across policies (and against `collective::reference`);
//! only the simulated clock follows the selected schedule. A collective
//! therefore does:
//!
//! 1. `hc.choose_algo(kind, k, max_len)` once, up front — consulting the
//!    machine's [`AlgoSelect`] policy, cost model, and live fault state
//!    (any live fault forces [`Algo::SinglePort`], whose exchange steps
//!    carry the detour/retry machinery);
//! 2. the movement passes, with per-superstep charges only under
//!    [`Algo::SinglePort`];
//! 3. under [`Algo::AllPort`], one [`charge`] call for the whole
//!    schedule — `steps` concurrent supersteps of `message(per_port)`
//!    plus the per-step critical-path combines, priced by
//!    [`crate::cost::allport_schedule`].
//!
//! The schedules are the Johnsson & Ho (TR-610) all-port constructions
//! over the `k` edge-disjoint spanning binomial trees of
//! [`crate::spanning::EsbtForest`]: broadcast/reduce pipeline
//! `chunks` cells down/up each tree (`esbt_height(k) + chunks - 1`
//! supersteps of `ceil(ceil(L/k)/chunks)` elements per port), while
//! allreduce/scan run `k` dimension-staggered piece butterflies and
//! allgather absorbs `2^k - 1` segments over `k` ports in
//! `ceil((2^k - 1)/k)` supersteps.

pub use crate::cost::{Algo, AlgoPolicy, AlgoSelect, Collective};
use crate::machine::Hypercube;

/// Charge the whole all-port schedule for one collective call:
/// `kind` over `k` dimensions, critical-path segment length `max_len`,
/// `chunks` pipeline cells, `total_elements` machine-wide elements
/// moved (for the counters). No-op price changes never touch payloads —
/// the movement already happened (or happens after) in reference order.
pub(crate) fn charge(
    hc: &mut Hypercube,
    kind: Collective,
    k: usize,
    max_len: usize,
    chunks: usize,
    total_elements: u64,
) {
    hc.charge_allport(kind, k, max_len, chunks, total_elements);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{allport_schedule, esbt_height, CostModel};
    use crate::spanning::EsbtForest;

    #[test]
    fn tree_schedules_match_forest_height() {
        // The pipelined tree schedules must take exactly
        // height + chunks - 1 supersteps — the forest is the ground
        // truth for the cost model's step counts.
        for k in 1..=8u32 {
            let f = EsbtForest::new(k);
            let h = f.height(0);
            assert_eq!(h, esbt_height(k as usize));
            for chunks in [1usize, 2, 7] {
                for kind in [Collective::Broadcast, Collective::Reduce] {
                    let s = allport_schedule(kind, k as usize, 4096, chunks);
                    assert_eq!(s.steps, h + chunks - 1, "k={k} chunks={chunks} {kind:?}");
                }
            }
        }
    }

    #[test]
    fn charge_is_priced_like_collective_time() {
        let mut hc = Hypercube::new(5, CostModel::cm2_allport());
        charge(&mut hc, Collective::Allgather, 5, 333, 4, 10_000);
        let want = CostModel::cm2_allport().collective_time(
            Collective::Allgather,
            5,
            333,
            Algo::AllPort { chunks: 4 },
        );
        assert!((hc.elapsed_us() - want).abs() < 1e-9);
        assert!(hc.counters().allport_steps > 0);
    }

    #[test]
    fn allport_beats_single_port_where_it_should() {
        // The selection criterion is the priced comparison itself, so
        // spot-check the two acceptance collectives at p = 1024.
        let c = CostModel::cm2_allport();
        for kind in [Collective::Broadcast, Collective::Allgather] {
            let sel = AlgoSelect::default();
            let algo = sel.choose(&c, kind, 10, 16384, false);
            assert!(matches!(algo, Algo::AllPort { .. }), "{kind:?} should go all-port");
            let sp = c.collective_time(kind, 10, 16384, Algo::SinglePort);
            let ap = c.collective_time(kind, 10, 16384, algo);
            assert!(sp / ap >= 2.0, "{kind:?}: {:.2}x", sp / ap);
        }
    }
}
