//! Stable dimension permutations on Boolean cubes.
//!
//! A *dimension permutation* rearranges data so that the node at address
//! `(a_{d-1} ... a_0)` receives the data of the node whose address is the
//! bit-permutation `(a_{delta(d-1)} ... a_{delta(0)})`. Matrix
//! transposition, bit reversal and the k-shuffle are all special cases —
//! these are the subject of Ho & Johnsson's *Stable Dimension
//! Permutations on Boolean Cubes* (TR-617) and *Shuffle Permutations on
//! Boolean Cubes* (TR-653), both abstracted in the source booklet, and
//! they underlie the embedding changes of the vector-matrix primitives.
//!
//! The implementation routes whole local buffers through the blocked
//! dimension-ordered router: a permutation touching `q` address bits
//! moves every buffer across at most `q` dimensions, for `q` blocked
//! supersteps — the one-port-optimal start-up count up to a constant
//! (TR-617's lower bound is the number of permuted dimensions).

use crate::machine::Hypercube;
use crate::route::{route_blocks, Block};
use crate::topology::NodeId;

/// Validate that `delta` is a permutation of `0..d`.
fn check_perm(d: u32, delta: &[u32]) {
    assert_eq!(delta.len(), d as usize, "permutation must cover every cube dimension");
    let mut seen = vec![false; d as usize];
    for &x in delta {
        assert!(x < d, "dimension {x} out of range");
        assert!(!seen[x as usize], "dimension {x} repeated");
        seen[x as usize] = true;
    }
}

/// Apply `delta` to a node address: output bit `i` = input bit
/// `delta[i]`.
#[must_use]
pub fn permute_address(node: NodeId, delta: &[u32]) -> NodeId {
    let mut out = 0usize;
    for (i, &src) in delta.iter().enumerate() {
        out |= ((node >> src) & 1) << i;
    }
    out
}

/// Perform the dimension permutation: on return, node `x` holds the
/// buffer previously held by node `permute_address(x, delta)`.
///
/// Charged as the blocked routed move it is: one superstep per cube
/// dimension that actually carries traffic (at most the number of
/// non-fixed points of `delta`).
pub fn dimension_permute<T>(hc: &mut Hypercube, locals: &mut [Vec<T>], delta: &[u32]) {
    let cube = hc.cube();
    check_perm(cube.dim(), delta);
    assert_eq!(locals.len(), cube.nodes());

    // Destination of node x's data: the y with permute_address(y) == x,
    // i.e. y = inverse-permuted address.
    let mut inverse = vec![0u32; delta.len()];
    for (i, &src) in delta.iter().enumerate() {
        inverse[src as usize] = i as u32;
    }

    let outgoing: Vec<Vec<Block<T>>> = locals
        .iter_mut()
        .enumerate()
        .map(|(node, buf)| {
            let dst = permute_address(node, &inverse);
            vec![Block::new(dst, node as u64, std::mem::take(buf))]
        })
        .collect();
    let mut arrived = route_blocks(hc, outgoing);
    for (node, blocks) in arrived.iter_mut().enumerate() {
        debug_assert_eq!(blocks.len(), 1);
        locals[node] = std::mem::take(&mut blocks[0].data);
    }
}

/// The bit-reversal permutation `delta(i) = d-1-i` (FFT reordering).
#[must_use]
pub fn bit_reversal(d: u32) -> Vec<u32> {
    (0..d).rev().collect()
}

/// The k-shuffle: a cyclic rotation of the address bits by `k`
/// positions (`delta(i) = (i + k) mod d`), the generalised shuffle of
/// TR-653.
#[must_use]
pub fn shuffle(d: u32, k: u32) -> Vec<u32> {
    (0..d).map(|i| (i + k) % d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    #[test]
    fn identity_permutation_is_free() {
        let mut hc = machine(4);
        let delta: Vec<u32> = (0..4).collect();
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        let before = locals.clone();
        dimension_permute(&mut hc, &mut locals, &delta);
        assert_eq!(locals, before);
        assert_eq!(hc.counters().message_steps, 0);
    }

    #[test]
    fn permute_address_applies_bitwise() {
        // delta = [1, 0]: output bit0 = input bit1, output bit1 = input bit0.
        assert_eq!(permute_address(0b01, &[1, 0]), 0b10);
        assert_eq!(permute_address(0b10, &[1, 0]), 0b01);
        assert_eq!(permute_address(0b11, &[1, 0]), 0b11);
    }

    #[test]
    fn permutation_semantics_match_definition() {
        let mut hc = machine(5);
        let delta = shuffle(5, 2);
        let mut locals = hc.locals_from_fn(|n| vec![n as u64, 100 + n as u64]);
        dimension_permute(&mut hc, &mut locals, &delta);
        for node in 0..hc.p() {
            let src = permute_address(node, &delta);
            assert_eq!(locals[node], vec![src as u64, 100 + src as u64], "node {node}");
        }
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let mut hc = machine(6);
        let delta = bit_reversal(6);
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        dimension_permute(&mut hc, &mut locals, &delta);
        // Not identity in between (for nodes whose reversed address differs)...
        assert_ne!(locals[1], vec![1]);
        dimension_permute(&mut hc, &mut locals, &delta);
        for node in 0..hc.p() {
            assert_eq!(locals[node], vec![node], "involution restores node {node}");
        }
    }

    #[test]
    fn shuffle_composition_wraps_around() {
        // d applications of the 1-shuffle = identity.
        let d = 4u32;
        let mut hc = machine(d);
        let delta = shuffle(d, 1);
        let mut locals = hc.locals_from_fn(|n| vec![n as u32]);
        for _ in 0..d {
            dimension_permute(&mut hc, &mut locals, &delta);
        }
        for node in 0..hc.p() {
            assert_eq!(locals[node], vec![node as u32]);
        }
    }

    #[test]
    fn startups_bounded_by_permuted_dimensions() {
        // A transposition of two dims moves data across at most 2 dims.
        let mut hc = machine(6);
        let mut delta: Vec<u32> = (0..6).collect();
        delta.swap(0, 5);
        let mut locals = hc.locals_from_fn(|n| vec![n as u8; 3]);
        dimension_permute(&mut hc, &mut locals, &delta);
        assert!(
            hc.counters().message_steps <= 2,
            "two permuted dims, {} supersteps",
            hc.counters().message_steps
        );
    }

    #[test]
    fn ragged_buffers_travel_intact() {
        let mut hc = machine(3);
        let delta = bit_reversal(3);
        let mut locals = hc.locals_from_fn(|n| vec![n as u16; n]);
        dimension_permute(&mut hc, &mut locals, &delta);
        for node in 0..hc.p() {
            let src = permute_address(node, &delta);
            assert_eq!(locals[node], vec![src as u16; src]);
        }
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn non_permutation_rejected() {
        let mut hc = machine(3);
        let mut locals: Vec<Vec<u8>> = hc.empty_locals();
        dimension_permute(&mut hc, &mut locals, &[0, 0, 2]);
    }
}
