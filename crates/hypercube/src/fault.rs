//! Deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] describes *what goes wrong and when*: permanent link
//! failures, permanent node failures (each with an activation step), and
//! a transient message-drop process over a step window. "When" is
//! measured on the **fault clock** — the machine's cumulative count of
//! blocked message supersteps ([`crate::counters::Counters::message_steps`]) —
//! so a plan replays identically for a given program, cost model and
//! seed: every fault decision is a pure hash of
//! `(seed, step, canonical link, attempt)` with no hidden state.
//!
//! A [`ResilientConfig`] describes *what the machine does about it*:
//! how failures are detected, how many bounded-exponential-backoff
//! retransmissions are attempted for transient drops, before traffic is
//! escalated to a detour around the link (charged as extra hops). The
//! recovery machinery only affects the modeled clock and counters; the
//! simulator still really moves the data, so results under any
//! recoverable plan are bit-identical to the fault-free run — which is
//! exactly what the chaos tests assert.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};

/// A permanent failure of the channel between two neighbouring nodes,
/// active from `from_step` (fault clock) onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    /// One endpoint (order does not matter; links are canonicalized).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First fault-clock step at which the link is dead.
    pub from_step: u64,
}

/// A permanent failure of a whole node, active from `from_step` onward.
///
/// The machine does not act on node faults by itself: the layout layer
/// reacts by concentrating the dead node's block onto a healthy
/// neighbour (see the `vmp-layout` degradation module), after which the
/// machine's host map makes the dead node's traffic local to its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The failing node.
    pub node: NodeId,
    /// First fault-clock step at which the node is dead.
    pub from_step: u64,
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all pseudo-random fault decisions.
    pub seed: u64,
    /// Permanent link failures.
    pub link_faults: Vec<LinkFault>,
    /// Permanent node failures.
    pub node_faults: Vec<NodeFault>,
    /// Per-(link, step, attempt) probability of a transient message drop
    /// in `[0, 1]`.
    pub drop_rate: f64,
    /// First fault-clock step of the transient-drop window.
    pub drop_from_step: u64,
    /// One past the last step of the transient-drop window
    /// (`u64::MAX` = open-ended).
    pub drop_until_step: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (the seed is kept for reproducibility
    /// bookkeeping only).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            link_faults: Vec::new(),
            node_faults: Vec::new(),
            drop_rate: 0.0,
            drop_from_step: 0,
            drop_until_step: u64::MAX,
        }
    }

    /// Add a permanent link failure (builder style).
    #[must_use]
    pub fn with_link_fault(mut self, a: NodeId, b: NodeId, from_step: u64) -> Self {
        self.link_faults.push(LinkFault { a, b, from_step });
        self
    }

    /// Add a permanent node failure (builder style).
    #[must_use]
    pub fn with_node_fault(mut self, node: NodeId, from_step: u64) -> Self {
        self.node_faults.push(NodeFault { node, from_step });
        self
    }

    /// Enable transient drops at `rate` over fault-clock steps
    /// `[from_step, until_step)` (builder style).
    ///
    /// # Panics
    /// Panics unless `0 <= rate <= 1`.
    #[must_use]
    pub fn with_drops(mut self, rate: f64, from_step: u64, until_step: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0, 1]");
        self.drop_rate = rate;
        self.drop_from_step = from_step;
        self.drop_until_step = until_step;
        self
    }

    /// Whether the plan injects no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.node_faults.is_empty() && self.drop_rate == 0.0
    }

    /// Is the link `{a, b}` permanently dead at fault-clock `step`?
    #[must_use]
    pub fn link_dead(&self, a: NodeId, b: NodeId, step: u64) -> bool {
        let (lo, hi) = canonical(a, b);
        self.link_faults.iter().any(|f| canonical(f.a, f.b) == (lo, hi) && step >= f.from_step)
    }

    /// Is `node` permanently dead at fault-clock `step`?
    #[must_use]
    pub fn node_dead(&self, node: NodeId, step: u64) -> bool {
        self.node_faults.iter().any(|f| f.node == node && step >= f.from_step)
    }

    /// Nodes that are dead at fault-clock `step`.
    #[must_use]
    pub fn dead_nodes_at(&self, step: u64) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> =
            self.node_faults.iter().filter(|f| step >= f.from_step).map(|f| f.node).collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Does the message on link `{a, b}` at fault-clock `step` get
    /// dropped on transmission `attempt` (0 = first try)?
    ///
    /// Pure function of `(seed, step, link, attempt)` — replays
    /// identically and is independent across links, steps and attempts.
    #[must_use]
    pub fn transient_drop(&self, a: NodeId, b: NodeId, step: u64, attempt: u32) -> bool {
        if self.drop_rate <= 0.0 || step < self.drop_from_step || step >= self.drop_until_step {
            return false;
        }
        let (lo, hi) = canonical(a, b);
        let h = mix(self.seed, step, (lo as u64) << 32 | hi as u64, u64::from(attempt));
        // Top 53 bits give a uniform draw in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.drop_rate
    }
}

/// How the receiver detects a failed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Detect {
    /// End-to-end checksum verified as the message arrives: a drop is
    /// known at the end of the superstep, so retransmission starts
    /// immediately (no extra detection latency beyond the backoff).
    Checksum,
    /// Timeout-based detection: each failed round additionally costs the
    /// given latency before the retransmission can start.
    Timeout {
        /// Detection latency per failed round, in microseconds.
        us: f64,
    },
}

/// Recovery policy for the machine's resilient communication path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilientConfig {
    /// Maximum retransmissions of a dropped message before the traffic
    /// is escalated to a detour around the link.
    pub max_retries: u32,
    /// Base backoff before the first retransmission, in microseconds;
    /// round `r` waits `backoff_us * 2^r` (bounded exponential backoff).
    pub backoff_us: f64,
    /// Failure-detection mechanism.
    pub detect: Detect,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig { max_retries: 4, backoff_us: 1.0, detect: Detect::Checksum }
    }
}

impl ResilientConfig {
    /// Detection latency added to each failed round, in microseconds.
    #[must_use]
    pub fn detect_latency_us(&self) -> f64 {
        match self.detect {
            Detect::Checksum => 0.0,
            Detect::Timeout { us } => us,
        }
    }
}

/// Canonical (unordered) form of a link.
#[inline]
fn canonical(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    (a.min(b), a.max(b))
}

/// splitmix64-style stateless mixer over the fault decision inputs.
fn mix(seed: u64, step: u64, link: u64, attempt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(link.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(attempt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none(42);
        assert!(plan.is_empty());
        assert!(!plan.link_dead(0, 1, 0));
        assert!(!plan.node_dead(3, 1000));
        assert!(!plan.transient_drop(0, 1, 5, 0));
    }

    #[test]
    fn link_fault_respects_activation_step_and_orientation() {
        let plan = FaultPlan::none(1).with_link_fault(5, 4, 10);
        assert!(!plan.link_dead(4, 5, 9), "inactive before from_step");
        assert!(plan.link_dead(4, 5, 10));
        assert!(plan.link_dead(5, 4, 11), "orientation-independent");
        assert!(!plan.link_dead(4, 6, 10), "other links unaffected");
    }

    #[test]
    fn node_fault_schedule() {
        let plan = FaultPlan::none(1).with_node_fault(7, 3).with_node_fault(2, 8);
        assert!(!plan.node_dead(7, 2));
        assert!(plan.node_dead(7, 3));
        assert_eq!(plan.dead_nodes_at(2), vec![]);
        assert_eq!(plan.dead_nodes_at(5), vec![7]);
        assert_eq!(plan.dead_nodes_at(8), vec![2, 7]);
    }

    #[test]
    fn transient_drops_are_deterministic_and_windowed() {
        let plan = FaultPlan::none(99).with_drops(0.5, 10, 20);
        for step in 0..40u64 {
            for attempt in 0..3u32 {
                let d1 = plan.transient_drop(1, 3, step, attempt);
                let d2 = plan.transient_drop(3, 1, step, attempt);
                assert_eq!(d1, d2, "orientation-independent");
                if !(10..20).contains(&step) {
                    assert!(!d1, "outside window");
                }
            }
        }
        // At rate 0.5 over 10 steps x several links, some drop and some don't.
        let drops: usize = (10..20u64)
            .flat_map(|s| (0..4usize).map(move |l| (s, l)))
            .filter(|&(s, l)| plan.transient_drop(l, l + 1, s, 0))
            .count();
        assert!(drops > 0 && drops < 40, "rate 0.5 is neither 0 nor 1 ({drops}/40)");
    }

    #[test]
    fn drop_decisions_vary_with_attempt() {
        // A retry must get an independent draw, else retransmission
        // could never succeed on a dropped link.
        let plan = FaultPlan::none(7).with_drops(0.5, 0, u64::MAX);
        let varied = (0..64u64)
            .any(|step| plan.transient_drop(0, 1, step, 0) != plan.transient_drop(0, 1, step, 1));
        assert!(varied);
    }

    #[test]
    fn default_config_is_bounded_checksum_retry() {
        let cfg = ResilientConfig::default();
        assert_eq!(cfg.max_retries, 4);
        assert_eq!(cfg.detect, Detect::Checksum);
        assert_eq!(cfg.detect_latency_us(), 0.0);
        let t = ResilientConfig { detect: Detect::Timeout { us: 5.0 }, ..cfg };
        assert_eq!(t.detect_latency_us(), 5.0);
    }
}
