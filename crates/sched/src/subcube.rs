//! Aligned subcubes of a Boolean cube.
//!
//! A *subcube* of order `k` inside a `d`-cube is obtained by fixing the
//! high `d - k` address bits and leaving the **low** `k` dimensions
//! free: the node set `{base + x : 0 <= x < 2^k}` with `base` a
//! multiple of `2^k`. This orientation is what makes space-sharing
//! transparent to the primitives:
//!
//! * the free dimensions of every subcube are `0..k`, exactly the
//!   dimensions a standalone `k`-cube has, so the map
//!   `logical -> base + logical` is a cube isomorphism that preserves
//!   channel dimensions;
//! * binary-reflected Gray-code grid embeddings (and therefore the
//!   paper's load-balanced matrix/vector layouts) are computed in the
//!   logical `k`-cube and transfer verbatim — a job scheduled onto any
//!   subcube runs the *identical* program, superstep for superstep,
//!   as it would on its own machine, which is why scheduled results
//!   are bit-identical to standalone runs.
//!
//! Two subcubes of the same order whose bases differ only in bit `k`
//! are *buddies*: they merge into the order-`k + 1` subcube at the
//! lower base. The allocator in [`crate::alloc`] splits and coalesces
//! exclusively along buddy pairs.

use vmp_hypercube::topology::NodeId;

/// An aligned subcube: `2^order` nodes starting at `base`, with the low
/// `order` dimensions free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Subcube {
    base: NodeId,
    order: u32,
}

impl Subcube {
    /// The subcube `{base .. base + 2^order}`.
    ///
    /// # Panics
    /// Panics if `base` is not aligned to `2^order`.
    #[must_use]
    pub fn new(base: NodeId, order: u32) -> Self {
        assert!(base % (1usize << order) == 0, "subcube base {base} unaligned for order {order}");
        Subcube { base, order }
    }

    /// Lowest node identifier in the subcube.
    #[inline]
    #[must_use]
    pub fn base(self) -> NodeId {
        self.base
    }

    /// Number of free dimensions `k`.
    #[inline]
    #[must_use]
    pub fn order(self) -> u32 {
        self.order
    }

    /// Number of nodes `2^k`.
    #[inline]
    #[must_use]
    pub fn len(self) -> usize {
        1usize << self.order
    }

    /// Never empty (order 0 is a single node).
    #[inline]
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// True iff `node` lies inside this subcube.
    #[inline]
    #[must_use]
    pub fn contains(self, node: NodeId) -> bool {
        node ^ self.base < self.len()
    }

    /// The logical (in-subcube) address of a physical node: the inverse
    /// of `logical -> base + logical`.
    ///
    /// # Panics
    /// Panics if `node` is outside the subcube.
    #[inline]
    #[must_use]
    pub fn local(self, node: NodeId) -> NodeId {
        assert!(self.contains(node), "node {node} outside {self:?}");
        node ^ self.base
    }

    /// The physical node hosting logical address `local`.
    #[inline]
    #[must_use]
    pub fn physical(self, local: NodeId) -> NodeId {
        debug_assert!(local < self.len());
        self.base + local
    }

    /// The buddy of this subcube: same order, base differing in bit
    /// `order`. Freeing both merges them into [`Subcube::parent`].
    #[must_use]
    pub fn buddy(self) -> Subcube {
        Subcube { base: self.base ^ (1usize << self.order), order: self.order }
    }

    /// The order-`k + 1` subcube containing this one and its buddy.
    #[must_use]
    pub fn parent(self) -> Subcube {
        Subcube { base: self.base & !(1usize << self.order), order: self.order + 1 }
    }

    /// The two order-`k - 1` halves, lower base first.
    ///
    /// # Panics
    /// Panics on an order-0 subcube.
    #[must_use]
    pub fn halves(self) -> (Subcube, Subcube) {
        assert!(self.order > 0, "an order-0 subcube has no halves");
        let k = self.order - 1;
        (
            Subcube { base: self.base, order: k },
            Subcube { base: self.base + (1usize << k), order: k },
        )
    }

    /// Iterator over the physical node identifiers.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        self.base..self.base + self.len()
    }

    /// Do two subcubes share any node?
    #[must_use]
    pub fn overlaps(self, other: Subcube) -> bool {
        self.contains(other.base) || other.contains(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_roundtrips() {
        let s = Subcube::new(8, 3);
        assert_eq!(s.len(), 8);
        assert!(s.contains(8) && s.contains(15));
        assert!(!s.contains(7) && !s.contains(16));
        for local in 0..8 {
            assert_eq!(s.local(s.physical(local)), local);
        }
    }

    #[test]
    fn buddy_and_parent_are_involutive() {
        let s = Subcube::new(8, 2);
        assert_eq!(s.buddy(), Subcube::new(12, 2));
        assert_eq!(s.buddy().buddy(), s);
        assert_eq!(s.parent(), Subcube::new(8, 3));
        assert_eq!(s.buddy().parent(), s.parent());
        let (lo, hi) = s.parent().halves();
        assert_eq!((lo, hi), (s, s.buddy()));
    }

    #[test]
    fn overlap_is_containment_of_a_base() {
        let a = Subcube::new(0, 3);
        let b = Subcube::new(4, 2);
        let c = Subcube::new(8, 2);
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!b.overlaps(c));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_base_rejected() {
        let _ = Subcube::new(6, 2);
    }
}
