//! Buddy allocation of subcubes, with dead-node quarantine.
//!
//! The classic buddy discipline over cube orders: the free pool holds
//! aligned [`Subcube`]s; an allocation of order `k` takes the
//! lowest-based free block of the smallest sufficient order and splits
//! it down to size (low half kept, high half returned to the pool);
//! a free re-inserts the block and greedily merges buddy pairs back
//! up. Everything is plain sorted `Vec`s — the allocator is a pure
//! function of its call sequence, which the proptest suite exploits to
//! check determinism.
//!
//! **Fault integration.** A node reported dead is *quarantined*: the
//! order-0 leaf holding it is withdrawn from the pool forever, so no
//! later allocation can contain it and — because coalescing requires
//! both halves free — none of its enclosing blocks can re-form. The
//! allocatable pool shrinks by exactly the dead leaves. When the
//! healthy pool can no longer ever satisfy an order (every aligned
//! block of that size has a casualty), [`BuddyAllocator::allocate_degraded`]
//! can hand out a block *around* one dead node; the scheduler then runs
//! the job under the layout layer's graceful degradation, which keeps
//! results bit-identical at reduced speed.

use crate::subcube::Subcube;
use vmp_hypercube::topology::NodeId;

/// What a dead-node report hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadImpact {
    /// The node was in the free pool; the pool shrank by one leaf.
    Free,
    /// The node was inside the returned allocated subcube; the caller
    /// owns the consequences (abort/re-plan the tenant job).
    Allocated(Subcube),
    /// Already quarantined — nothing changed.
    AlreadyDead,
}

/// Buddy subcube allocator over a `2^dim`-node cube.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    dim: u32,
    /// `free[k]` = sorted bases of free order-`k` blocks.
    free: Vec<Vec<NodeId>>,
    /// Sorted quarantined dead nodes.
    dead: Vec<NodeId>,
    /// Outstanding allocations, sorted by base.
    allocated: Vec<Subcube>,
}

impl BuddyAllocator {
    /// A fresh allocator owning the whole `dim`-cube as one free block.
    #[must_use]
    pub fn new(dim: u32) -> Self {
        let mut free = vec![Vec::new(); dim as usize + 1];
        free[dim as usize].push(0);
        BuddyAllocator { dim, free, dead: Vec::new(), allocated: Vec::new() }
    }

    /// Machine dimension `d`.
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Total nodes `p = 2^d`.
    #[must_use]
    pub fn p(&self) -> usize {
        1usize << self.dim
    }

    /// Quarantined dead nodes, sorted.
    #[must_use]
    pub fn dead(&self) -> &[NodeId] {
        &self.dead
    }

    /// Outstanding allocations, sorted by base.
    #[must_use]
    pub fn live(&self) -> &[Subcube] {
        &self.allocated
    }

    /// Nodes currently available for healthy allocation.
    #[must_use]
    pub fn free_nodes(&self) -> usize {
        self.free.iter().enumerate().map(|(k, v)| v.len() << k).sum()
    }

    /// Is `node` quarantined?
    #[must_use]
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.binary_search(&node).is_ok()
    }

    /// Allocate a healthy subcube of `order` free dimensions, lowest
    /// base first. `None` when no (current) healthy block fits.
    pub fn allocate(&mut self, order: u32) -> Option<Subcube> {
        if order > self.dim {
            return None;
        }
        // Smallest sufficient order with a free block.
        let from = (order..=self.dim).find(|&k| !self.free[k as usize].is_empty())?;
        let base = self.free[from as usize].remove(0);
        let mut block = Subcube::new(base, from);
        // Split down, keeping the low half, pooling the high half.
        while block.order() > order {
            let (lo, hi) = block.halves();
            self.insert_free(hi);
            block = lo;
        }
        let at = self.allocated.partition_point(|s| s.base() < block.base());
        self.allocated.insert(at, block);
        Some(block)
    }

    /// Allocate a block of `order` free dimensions containing exactly
    /// one quarantined node (for degraded execution), when its healthy
    /// remainder is entirely free. Lowest base first. `None` when no
    /// such block exists right now.
    ///
    /// The returned node is the dead node's *logical* (in-subcube)
    /// address, ready for the layout layer's single-hop concentration.
    pub fn allocate_degraded(&mut self, order: u32) -> Option<(Subcube, NodeId)> {
        if order > self.dim {
            return None;
        }
        let len = 1usize << order;
        let mut base = 0usize;
        while base < self.p() {
            let block = Subcube::new(base, order);
            let dead_inside: Vec<NodeId> =
                self.dead.iter().copied().filter(|&n| block.contains(n)).collect();
            if dead_inside.len() == 1 && self.claim_free_within(block) {
                let at = self.allocated.partition_point(|s| s.base() < block.base());
                self.allocated.insert(at, block);
                return Some((block, block.local(dead_inside[0])));
            }
            base += len;
        }
        None
    }

    /// Could a healthy block of `order` ever be allocated once all
    /// tenants leave — i.e. does some aligned order-`order` block
    /// contain no dead node? Drives the degraded-fallback decision.
    #[must_use]
    pub fn can_ever_allocate(&self, order: u32) -> bool {
        if order > self.dim {
            return false;
        }
        let len = 1usize << order;
        (0..self.p())
            .step_by(len)
            .any(|base| !self.dead.iter().any(|&n| Subcube::new(base, order).contains(n)))
    }

    /// Return `sub` to the pool, coalescing buddies. Leaves holding
    /// quarantined nodes are withdrawn instead of pooled, so a block
    /// freed after a mid-tenancy casualty automatically sheds exactly
    /// its dead leaves.
    ///
    /// # Panics
    /// Panics if `sub` is not an outstanding allocation.
    pub fn release(&mut self, sub: Subcube) {
        let Ok(at) = self.allocated.binary_search_by(|s| s.base().cmp(&sub.base())) else {
            panic!("release of {sub:?} which is not allocated");
        };
        assert!(self.allocated[at] == sub, "release of {sub:?} does not match allocation");
        self.allocated.remove(at);
        self.pool_healthy(sub);
    }

    /// Quarantine `node`. See [`DeadImpact`] for what was hit.
    pub fn mark_dead(&mut self, node: NodeId) -> DeadImpact {
        assert!(node < self.p(), "dead node {node} out of range");
        if self.is_dead(node) {
            return DeadImpact::AlreadyDead;
        }
        let at = self.dead.partition_point(|&n| n < node);
        self.dead.insert(at, node);
        if let Some(sub) = self.allocation_containing(node) {
            // The tenant's block stays allocated until the scheduler
            // aborts the job and releases it; release() then drops the
            // newly-dead leaf.
            return DeadImpact::Allocated(sub);
        }
        // The node is in some free block: withdraw it and re-pool the
        // healthy remainder (split around the new dead leaf).
        if let Some(block) = self.take_free_containing(node) {
            self.pool_healthy(block);
        }
        DeadImpact::Free
    }

    /// The outstanding allocation containing `node`, if any.
    #[must_use]
    pub fn allocation_containing(&self, node: NodeId) -> Option<Subcube> {
        let at = self.allocated.partition_point(|s| s.base() <= node);
        at.checked_sub(1).map(|i| self.allocated[i]).filter(|s| s.contains(node))
    }

    /// Every node is exactly one of: free, dead, or inside one
    /// allocation — the allocator's partition invariant. Cheap enough
    /// to run after every operation in the property tests.
    pub fn assert_consistent(&self) {
        let mut owner = vec![0u8; self.p()];
        for (k, bases) in self.free.iter().enumerate() {
            assert!(bases.windows(2).all(|w| w[0] < w[1]), "free[{k}] unsorted or duplicated");
            for &b in bases {
                for n in Subcube::new(b, k as u32).nodes() {
                    assert_eq!(owner[n], 0, "node {n} multiply owned");
                    owner[n] = 1;
                }
            }
        }
        for &d in &self.dead {
            assert_eq!(owner[d], 0, "dead node {d} also pooled");
            owner[d] = 2;
        }
        for s in &self.allocated {
            for n in s.nodes() {
                assert!(owner[n] == 0 || owner[n] == 2, "allocated node {n} also pooled");
                if owner[n] == 0 {
                    owner[n] = 3;
                }
            }
        }
        assert!(owner.iter().all(|&o| o != 0), "unowned node: pool leak");
    }

    // ----- internals ----------------------------------------------------

    /// Insert a (healthy) block and merge buddy pairs upward.
    fn insert_free(&mut self, sub: Subcube) {
        let mut cur = sub;
        while cur.order() < self.dim {
            let buddy = cur.buddy();
            let bases = &mut self.free[cur.order() as usize];
            match bases.binary_search(&buddy.base()) {
                Ok(i) => {
                    bases.remove(i);
                    cur = cur.parent();
                }
                Err(_) => break,
            }
        }
        let bases = &mut self.free[cur.order() as usize];
        let at = bases.partition_point(|&b| b < cur.base());
        bases.insert(at, cur.base());
    }

    /// Pool the healthy leaves of `sub`: recurse around quarantined
    /// nodes, inserting maximal clean blocks.
    fn pool_healthy(&mut self, sub: Subcube) {
        let has_dead = self.dead.iter().any(|&n| sub.contains(n));
        if !has_dead {
            self.insert_free(sub);
        } else if sub.order() > 0 {
            let (lo, hi) = sub.halves();
            self.pool_healthy(lo);
            self.pool_healthy(hi);
        }
        // An order-0 block holding a dead node is dropped: quarantined.
    }

    /// Remove and return the free block containing `node`, if any.
    fn take_free_containing(&mut self, node: NodeId) -> Option<Subcube> {
        for k in 0..=self.dim {
            let base = node & !((1usize << k) - 1);
            let bases = &mut self.free[k as usize];
            if let Ok(i) = bases.binary_search(&base) {
                bases.remove(i);
                return Some(Subcube::new(base, k));
            }
        }
        None
    }

    /// If the free fragments inside `block` cover every non-dead node
    /// of it, remove them all from the pool and return true; otherwise
    /// leave the pool untouched and return false.
    fn claim_free_within(&mut self, block: Subcube) -> bool {
        let mut covered = 0usize;
        let mut claims: Vec<(u32, NodeId)> = Vec::new();
        for k in 0..=block.order() {
            for &b in &self.free[k as usize] {
                if block.contains(b) {
                    covered += 1usize << k;
                    claims.push((k, b));
                }
            }
        }
        let dead_inside = self.dead.iter().filter(|&&n| block.contains(n)).count();
        if covered + dead_inside != block.len() {
            return false;
        }
        for (k, b) in claims {
            let bases = &mut self.free[k as usize];
            if let Ok(i) = bases.binary_search(&b) {
                bases.remove(i);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_splits_lowest_first_and_release_coalesces() {
        let mut a = BuddyAllocator::new(4);
        let s1 = a.allocate(2).expect("fresh pool");
        assert_eq!((s1.base(), s1.order()), (0, 2));
        let s2 = a.allocate(2).expect("three quarters left");
        assert_eq!(s2.base(), 4);
        let s3 = a.allocate(3).expect("high half free");
        assert_eq!(s3.base(), 8);
        a.assert_consistent();
        assert!(a.allocate(3).is_none(), "no order-3 block left");
        a.release(s1);
        a.release(s2);
        a.release(s3);
        a.assert_consistent();
        let whole = a.allocate(4).expect("fully coalesced");
        assert_eq!((whole.base(), whole.order()), (0, 4));
    }

    #[test]
    fn dead_node_shrinks_pool_and_blocks_coalescing() {
        let mut a = BuddyAllocator::new(3);
        assert_eq!(a.mark_dead(5), DeadImpact::Free);
        assert_eq!(a.mark_dead(5), DeadImpact::AlreadyDead);
        a.assert_consistent();
        assert_eq!(a.free_nodes(), 7);
        assert!(a.allocate(3).is_none(), "whole cube can never be healthy again");
        assert!(!a.can_ever_allocate(3));
        assert!(a.can_ever_allocate(2), "the low half has no casualty");
        let s = a.allocate(2).expect("low half");
        assert_eq!(s.base(), 0);
        assert!(s.nodes().all(|n| !a.is_dead(n)));
        a.release(s);
        a.assert_consistent();
    }

    #[test]
    fn mid_tenancy_death_is_reported_and_shed_on_release() {
        let mut a = BuddyAllocator::new(3);
        let s = a.allocate(2).expect("fresh pool");
        assert_eq!(a.mark_dead(2), DeadImpact::Allocated(s));
        a.assert_consistent();
        a.release(s);
        a.assert_consistent();
        // The freed block re-pools as 3 healthy leaves, not 4.
        assert_eq!(a.free_nodes(), 7);
        let s2 = a.allocate(2).expect("the untouched high quarter");
        assert_eq!(s2.base(), 4);
        assert!(a.allocate(2).is_none(), "the low quarter can never re-form");
    }

    #[test]
    fn degraded_allocation_wraps_one_dead_node() {
        let mut a = BuddyAllocator::new(3);
        a.mark_dead(6);
        assert!(a.allocate(3).is_none(), "the whole cube has a casualty");
        assert!(!a.can_ever_allocate(3));
        let (s, local_dead) = a.allocate_degraded(3).expect("single-casualty cube");
        assert_eq!((s.base(), s.order()), (0, 3));
        assert_eq!(local_dead, 6);
        a.assert_consistent();
        a.release(s);
        a.assert_consistent();
        // A second casualty in the only order-3 block rules out even a
        // degraded whole-cube allocation...
        a.mark_dead(1);
        assert!(a.allocate_degraded(3).is_none());
        // ...but an order-2 block with exactly one casualty still exists.
        let (s2, ld2) = a.allocate_degraded(2).expect("one-casualty quarter");
        assert_eq!((s2.base(), s2.order()), (0, 2));
        assert_eq!(ld2, 1);
        a.assert_consistent();
    }
}
