//! Seeded arrival traces: the scheduler's workload generator.
//!
//! A [`Trace`] is a list of [`JobSpec`]s with exponential inter-arrival
//! times plus a list of timed node-failure events, all drawn from one
//! seeded generator — the same seed always produces the same trace, so
//! every experiment and differential test replays exactly.
//!
//! The mix mirrors the paper's three applications: frequent small
//! vector-matrix multiplies (latency-bound — more processors do not
//! help them), periodic Gaussian eliminations, and occasional simplex
//! solves, with a fraction of jobs carrying a recoverable transient-
//! drop [`FaultPlan`](vmp_hypercube::fault::FaultPlan). Arrivals are
//! bursty (exponential), so admission queues actually form and the
//! scheduling policy matters.

use crate::job::{exp_interarrival, JobKind, JobSpec};
use rand::Rng;
use vmp_algos::workloads;
use vmp_hypercube::topology::NodeId;

/// A node failure injected at machine level: at `at_us`, physical
/// `node` dies for good. The allocator quarantines it; a job running
/// on a subcube containing it is aborted and re-queued.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct FailureEvent {
    /// Simulated wall-clock time of the failure, microseconds.
    pub at_us: f64,
    /// The physical node that dies.
    pub node: NodeId,
}

/// A reproducible workload: jobs in arrival order plus failure events.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Jobs, sorted by `arrival_us`.
    pub jobs: Vec<JobSpec>,
    /// Machine-level node failures, sorted by `at_us`.
    pub failures: Vec<FailureEvent>,
}

/// Shape parameters for [`Trace::generate`].
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Machine dimension the trace targets (jobs request orders below
    /// this; failures hit nodes inside `2^dim`).
    pub dim: u32,
    /// Number of jobs.
    pub jobs: usize,
    /// Mean exponential inter-arrival gap, microseconds.
    pub mean_gap_us: f64,
    /// Number of permanent node failures spread over the arrival span.
    pub failures: usize,
}

impl TraceParams {
    /// The full-experiment trace at `dim = 10` (p = 1024). The mean
    /// gap is far below the mean service time, so demand overlaps:
    /// admission queues form and the policy choice is visible.
    #[must_use]
    pub fn full() -> Self {
        TraceParams { dim: 10, jobs: 48, mean_gap_us: 120.0, failures: 2 }
    }

    /// A seconds-not-minutes smoke trace on a 64-node machine.
    #[must_use]
    pub fn smoke() -> Self {
        TraceParams { dim: 6, jobs: 12, mean_gap_us: 300.0, failures: 1 }
    }
}

impl Trace {
    /// Generate the seeded trace for `params`. Deterministic: one
    /// `StdRng` drives sizes, gaps, drop rates, and failure times.
    #[must_use]
    pub fn generate(params: TraceParams, seed: u64) -> Trace {
        assert!(params.dim >= 4, "traces need room for order-4 subcubes");
        let mut r = workloads::rng(seed);
        let mut jobs = Vec::with_capacity(params.jobs);
        let mut clock = 0.0f64;
        for id in 0..params.jobs {
            clock += exp_interarrival(&mut r, params.mean_gap_us);
            // Mix: ~60% matvec, ~25% elimination, ~15% simplex.
            let draw: f64 = r.gen_range(0.0..1.0);
            let (kind, order) = if draw < 0.60 {
                let n = 64 + 16 * r.gen_range(0..5usize);
                // Never the whole machine: leave room for co-tenancy.
                let order = 4 + r.gen_range(0..3u32).min(params.dim.saturating_sub(5));
                (JobKind::Matvec { n }, order)
            } else if draw < 0.85 {
                let n = 16 + 2 * r.gen_range(0..7usize);
                // At these problem sizes elimination is communication-
                // bound: more processors make it *slower* (the paper's
                // own observation), so a big block is a long hold — the
                // contention that makes the admission policy matter.
                (JobKind::Gauss { n }, params.dim.saturating_sub(4).min(6))
            } else {
                let n = 8 + r.gen_range(0..5usize);
                (JobKind::Simplex { n }, params.dim.saturating_sub(4).min(6))
            };
            // ~10% of jobs run under a recoverable transient-drop plan.
            let drop_rate = if r.gen_range(0.0..1.0) < 0.10 { 0.02 } else { 0.0 };
            let seed = r.next_u64();
            jobs.push(JobSpec { id, kind, order, seed, arrival_us: clock, drop_rate });
        }
        // Failures land mid-trace on low node ids — the buddy allocator
        // packs from the bottom, so these hit live or imminent tenants.
        let span = clock;
        let mut failures: Vec<FailureEvent> = (0..params.failures)
            .map(|_| FailureEvent {
                at_us: span * r.gen_range(0.25..0.75),
                node: r.gen_range(0..(1usize << params.dim) / 4),
            })
            .collect();
        failures.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        Trace { jobs, failures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_replay_for_a_fixed_seed() {
        let a = Trace::generate(TraceParams::smoke(), 1989);
        let b = Trace::generate(TraceParams::smoke(), 1989);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.seed, y.seed);
            assert!((x.arrival_us - y.arrival_us).abs() == 0.0);
        }
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn traces_differ_across_seeds_and_stay_sorted() {
        let a = Trace::generate(TraceParams::smoke(), 1);
        let b = Trace::generate(TraceParams::smoke(), 2);
        assert!(a.jobs.iter().zip(&b.jobs).any(|(x, y)| x.seed != y.seed));
        for w in a.jobs.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us, "arrivals sorted");
        }
        for t in [&a, &b] {
            for f in &t.failures {
                assert!(f.node < 64);
            }
        }
    }

    #[test]
    fn full_params_fit_the_claimed_machine() {
        let t = Trace::generate(TraceParams::full(), 1989);
        assert_eq!(t.jobs.len(), 48);
        assert!(t.jobs.iter().all(|j| j.order <= 10));
        assert!(t.jobs.iter().any(|j| j.drop_rate > 0.0), "some jobs must carry drops");
    }
}
