//! Schedulable jobs: the paper's three applications as tenants.
//!
//! A [`JobSpec`] is a seeded, self-contained description of one run of
//! a vector-matrix multiply, a Gaussian elimination, or a simplex
//! solve. It knows how to execute itself on a machine of its requested
//! order ([`JobSpec::execute`]), how to predict its own service time
//! from the `vmp::analysis` cost model (the SPJF ranking key), and how
//! to serialise its result to a canonical word vector — `f64::to_bits`
//! plus status tags — so the scheduler's bit-identity contract is a
//! plain `Vec<u64>` equality.
//!
//! Each execution runs on a **fresh** machine of the job's order.
//! Under the scheduler that machine is the logical view of an aligned
//! subcube; because aligned subcubes keep their low dimensions free
//! (see [`crate::subcube`]), the logical machine is isomorphic to a
//! standalone one — same Gray-code embeddings, same supersteps, same
//! bits out. A fresh machine per attempt also pins the fault clock to
//! zero, so a job's transient-drop plan replays identically no matter
//! when or where the job is scheduled.

use rand::Rng;
use serde::Serialize;
use vmp_algos::serial::SimplexStatus;
use vmp_algos::workloads;
use vmp_algos::{gauss, matvec as mv, simplex};
use vmp_core::degrade::apply_degradation;
use vmp_core::{analysis, DistMatrix, DistVector};
use vmp_hypercube::cost::CostModel;
use vmp_hypercube::counters::Counters;
use vmp_hypercube::fault::{FaultPlan, ResilientConfig};
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::topology::{Cube, NodeId};
use vmp_layout::{Axis, Dist, MatShape, MatrixLayout, Placement, ProcGrid, VectorLayout};

/// Which of the paper's applications a job runs, with its problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobKind {
    /// `y = A x` on an `n x n` matrix: one elementwise pass + reduce.
    Matvec {
        /// Matrix side.
        n: usize,
    },
    /// Gaussian elimination with partial pivoting on an `n x n` system.
    Gauss {
        /// System size.
        n: usize,
    },
    /// Dense-tableau primal simplex on an `n`-constraint, `n`-variable LP.
    Simplex {
        /// Constraint and variable count.
        n: usize,
    },
}

impl JobKind {
    /// Short name for tables and traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Matvec { .. } => "matvec",
            JobKind::Gauss { .. } => "gauss",
            JobKind::Simplex { .. } => "simplex",
        }
    }
}

/// One job in an arrival trace.
#[derive(Debug, Clone, Serialize)]
pub struct JobSpec {
    /// Trace-unique identifier.
    pub id: usize,
    /// What to run.
    pub kind: JobKind,
    /// Requested subcube order (the job runs on `2^order` nodes).
    pub order: u32,
    /// Seed for the job's own data (matrix entries, rhs, LP).
    pub seed: u64,
    /// Arrival time on the simulated wall clock, microseconds.
    pub arrival_us: f64,
    /// Transient-drop rate of the job's recoverable [`FaultPlan`]
    /// (zero for a fault-free job).
    pub drop_rate: f64,
}

/// The canonical result of one job execution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobOutput {
    /// Result bytes as `f64::to_bits` words plus status tags — the
    /// bit-identity contract is equality of this vector.
    pub words: Vec<u64>,
    /// Simulated service time of the run, microseconds.
    pub service_us: f64,
    /// The run's own counter deltas ([`Counters::scoped`]).
    pub counters: Counters,
}

impl JobSpec {
    /// The job's recoverable fault plan: transient drops at
    /// [`JobSpec::drop_rate`] for the whole run, seeded by the job seed.
    /// Empty when the rate is zero.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        if self.drop_rate > 0.0 {
            FaultPlan::none(self.seed).with_drops(self.drop_rate, 0, u64::MAX)
        } else {
            FaultPlan::none(self.seed)
        }
    }

    /// Execute on a fresh machine of the job's own order — the
    /// standalone reference run every scheduled run must match
    /// bit-for-bit.
    #[must_use]
    pub fn run_standalone(&self, cost: CostModel) -> JobOutput {
        self.execute(cost, &[])
    }

    /// Execute on a fresh machine of the job's order with the given
    /// logical nodes dead (degraded mode; at most one node, single-hop
    /// recoverable). Empty `dead_locals` is the healthy path.
    #[must_use]
    pub fn execute(&self, cost: CostModel, dead_locals: &[NodeId]) -> JobOutput {
        let mut hc = Hypercube::new(self.order, cost);
        let (words, counters) = Counters::scoped(&mut hc, |hc| self.run_on(hc, dead_locals));
        JobOutput { words, service_us: hc.elapsed_us(), counters }
    }

    /// Predicted service time on a `2^order`-node subcube, from the
    /// analysis chapter's closed forms. Only the *ranking* matters (it
    /// drives shortest-predicted-job-first), so the per-kind models are
    /// first-order: dominant primitive calls plus the elementwise flops.
    #[must_use]
    pub fn predicted_us(&self, order: u32, cost: &CostModel) -> f64 {
        let grid = ProcGrid::square(Cube::new(order));
        match self.kind {
            JobKind::Matvec { n } => {
                let layout = MatrixLayout::cyclic(MatShape::new(n, n), grid);
                let block = analysis::local_block(&layout) as f64;
                analysis::predicted_reduce(&layout, cost) + cost.gamma * block
            }
            JobKind::Gauss { n } => {
                let layout = MatrixLayout::cyclic(MatShape::new(n, n + 1), grid);
                let block = analysis::local_block(&layout) as f64;
                let per_step = 2.0 * analysis::predicted_extract_replicated(&layout, cost)
                    + cost.gamma * 2.0 * block;
                n as f64 * per_step
            }
            JobKind::Simplex { n } => {
                // Tableau is (n+1) x (2n+1); expect O(n) pivots, each two
                // extractions (pivot row/column) plus a rank-1 update.
                let layout = MatrixLayout::cyclic(MatShape::new(n + 1, 2 * n + 1), grid);
                let block = analysis::local_block(&layout) as f64;
                let per_pivot = 2.0 * analysis::predicted_extract_replicated(&layout, cost)
                    + cost.gamma * 2.0 * block;
                2.0 * n as f64 * per_pivot
            }
        }
    }

    /// The body of one execution: build the working set, apply graceful
    /// degradation if the subcube carries a casualty, install the job's
    /// recoverable fault plan, run the solver, serialise.
    fn run_on(&self, hc: &mut Hypercube, dead_locals: &[NodeId]) -> Vec<u64> {
        let grid = ProcGrid::square(hc.cube());
        let words = match self.kind {
            JobKind::Matvec { n } => {
                let d = workloads::random_matrix(n, n, self.seed);
                let xh = workloads::random_vector(n, self.seed ^ 0x9e37_79b9);
                let a = DistMatrix::from_fn(
                    MatrixLayout::cyclic(MatShape::new(n, n), grid.clone()),
                    |i, j| d.get(i, j),
                );
                let x = DistVector::from_slice(
                    VectorLayout::aligned(n, grid, Axis::Row, Placement::Replicated, Dist::Cyclic),
                    &xh,
                );
                let mut resident = layout_sizes_mat(a.layout(), hc.p());
                for (r, node) in resident.iter_mut().zip(0..hc.p()) {
                    *r += x.layout().local_len(node);
                }
                self.prepare(hc, dead_locals, &resident);
                let y = mv::matvec(hc, &a, &x);
                y.to_dense().iter().map(|v| v.to_bits()).collect()
            }
            JobKind::Gauss { n } => {
                let (a, b, _x) = workloads::diag_dominant_system(n, self.seed);
                let layout = MatrixLayout::cyclic(MatShape::new(n, n + 1), grid);
                let mut aug =
                    DistMatrix::from_fn(layout, |i, j| if j < n { a.get(i, j) } else { b[i] });
                self.prepare(hc, dead_locals, &layout_sizes_mat(aug.layout(), hc.p()));
                match gauss::ge_solve_dist(hc, &mut aug) {
                    Ok((x, _stats)) => {
                        let mut w = vec![1u64];
                        w.extend(x.iter().map(|v| v.to_bits()));
                        w
                    }
                    Err(_) => vec![u64::MAX],
                }
            }
            JobKind::Simplex { n } => {
                let lp = workloads::random_dense_lp(n, n, self.seed);
                // The solver builds an (n+1) x (2n+1) tableau; price that
                // working set for degradation without materialising it.
                let t_layout = MatrixLayout::cyclic(MatShape::new(n + 1, 2 * n + 1), grid.clone());
                self.prepare(hc, dead_locals, &layout_sizes_mat(&t_layout, hc.p()));
                let r = simplex::solve_parallel(hc, &lp, grid, 50 * n.max(1));
                let status = match r.status {
                    SimplexStatus::Optimal => 1u64,
                    SimplexStatus::Unbounded => 2,
                    SimplexStatus::Infeasible => 3,
                    SimplexStatus::MaxIterations => 4,
                };
                let mut w = vec![status, r.iterations as u64, r.objective.to_bits()];
                w.extend(r.x.iter().map(|v| v.to_bits()));
                w
            }
        };
        hc.clear_faults();
        words
    }

    /// Degrade around any dead logical nodes, then arm the fault plan.
    fn prepare(&self, hc: &mut Hypercube, dead_locals: &[NodeId], resident: &[usize]) {
        if !dead_locals.is_empty() {
            let _ = apply_degradation(hc, dead_locals, resident);
        }
        let plan = self.plan();
        if !plan.is_empty() {
            hc.install_faults(plan, ResilientConfig::default());
        }
    }
}

/// Per-node resident element counts a matrix layout implies — what the
/// degradation migration must move off a dead node.
fn layout_sizes_mat(layout: &MatrixLayout, p: usize) -> Vec<usize> {
    (0..p).map(|node| layout.local_len(node)).collect()
}

/// Exponential inter-arrival sampler used by the trace generator:
/// inverse-CDF on a seeded uniform draw, so traces are reproducible.
pub(crate) fn exp_interarrival(rng: &mut impl Rng, mean_us: f64) -> f64 {
    // The sampler draws in [0, 1); 1 - u never reaches zero, so ln is
    // always finite.
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean_us * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: JobKind, order: u32, seed: u64, drop_rate: f64) -> JobSpec {
        JobSpec { id: 0, kind, order, seed, arrival_us: 0.0, drop_rate }
    }

    #[test]
    fn executions_are_deterministic() {
        for kind in [JobKind::Matvec { n: 24 }, JobKind::Gauss { n: 10 }, JobKind::Simplex { n: 6 }]
        {
            let s = spec(kind, 3, 42, 0.0);
            let a = s.run_standalone(CostModel::cm2());
            let b = s.run_standalone(CostModel::cm2());
            assert_eq!(a, b, "{} must replay bit-identically", kind.name());
            assert!(a.service_us > 0.0);
            assert!(a.counters.message_steps > 0, "{} should communicate", kind.name());
        }
    }

    #[test]
    fn recoverable_drops_are_result_invisible() {
        let clean = spec(JobKind::Gauss { n: 10 }, 3, 7, 0.0).run_standalone(CostModel::cm2());
        let noisy = spec(JobKind::Gauss { n: 10 }, 3, 7, 0.05).run_standalone(CostModel::cm2());
        assert_eq!(clean.words, noisy.words, "drops must not change result bits");
        assert!(noisy.counters.retries > 0, "the plan should actually bite");
        assert!(noisy.service_us > clean.service_us, "retries cost time");
    }

    #[test]
    fn degraded_run_is_bit_identical() {
        for kind in [JobKind::Matvec { n: 24 }, JobKind::Gauss { n: 10 }, JobKind::Simplex { n: 6 }]
        {
            let s = spec(kind, 3, 11, 0.0);
            let healthy = s.run_standalone(CostModel::cm2());
            let degraded = s.execute(CostModel::cm2(), &[5]);
            assert_eq!(healthy.words, degraded.words, "{} degraded bits", kind.name());
            assert!(
                degraded.service_us > healthy.service_us,
                "{}: the doubled-up host serialises compute",
                kind.name()
            );
        }
    }

    #[test]
    fn spjf_key_orders_small_before_large() {
        let cost = CostModel::cm2();
        let small = spec(JobKind::Matvec { n: 16 }, 4, 1, 0.0).predicted_us(4, &cost);
        let large = spec(JobKind::Gauss { n: 24 }, 4, 1, 0.0).predicted_us(4, &cost);
        assert!(small < large, "matvec must rank before elimination ({small} vs {large})");
    }

    #[test]
    fn predicted_us_stays_consistent_under_allport_model() {
        // The SPJF key routes its communication terms through the same
        // schedule selector the machine uses, so switching the cluster to
        // an all-port cost model moves predictions and executions
        // together: matvec's key tracks its simulated service time
        // exactly, and no kind's key ever prices the ported schedule
        // above the single-port one it replaces.
        let sp = CostModel::cm2();
        let ap = CostModel::cm2_allport();

        let s = spec(JobKind::Matvec { n: 32 }, 4, 3, 0.0);
        let out = s.run_standalone(ap);
        let key = s.predicted_us(4, &ap);
        assert!(
            (out.service_us - key).abs() < 1e-9,
            "matvec key {key} vs simulated {}",
            out.service_us
        );

        for kind in [JobKind::Matvec { n: 32 }, JobKind::Gauss { n: 16 }, JobKind::Simplex { n: 8 }]
        {
            let s = spec(kind, 4, 3, 0.0);
            assert!(
                s.predicted_us(4, &ap) <= s.predicted_us(4, &sp) + 1e-9,
                "{}: all-port key must not exceed the single-port key",
                kind.name()
            );
        }
    }
}
