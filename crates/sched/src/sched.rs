//! The deterministic discrete-event scheduler.
//!
//! One simulated `2^dim`-node machine is space-shared among the jobs of
//! a [`Trace`]: each admitted job receives a disjoint aligned subcube
//! from the buddy allocator and runs there exactly as it would on a
//! standalone machine of its order (see [`crate::subcube`] for why the
//! bits match). The simulation is a classic event loop — arrivals,
//! completions, and node failures on one min-heap ordered by
//! `(time, sequence)` with `f64::total_cmp`, so a fixed trace always
//! replays the same schedule.
//!
//! **Policies.** [`Policy::Fifo`] admits strictly in arrival order
//! (head-of-line blocking and all); [`Policy::Spjf`] admits the queued
//! job with the shortest predicted service time
//! ([`JobSpec::predicted_us`](crate::job::JobSpec::predicted_us), the
//! `vmp::analysis` closed forms) that
//! currently fits — a cheap approximation of shortest-job-first that
//! needs no oracle, only the cost model.
//!
//! **Faults.** A [`FailureEvent`] quarantines a node in the allocator.
//! If the node was inside a running job's subcube, that job is aborted
//! (its in-flight completion goes stale), its subcube is released —
//! shedding the dead leaf — and the job returns to the head of the
//! queue to be re-planned onto a healthy subcube. When a job's order
//! can never again be satisfied by a healthy block, the allocator
//! falls back to a single-casualty block and the job runs under
//! graceful degradation — bit-identical, just slower.
//!
//! **Baseline.** [`run_fcfs`] is the status quo this crate replaces:
//! jobs run one at a time, each holding the *whole* machine
//! exclusively while executing on its requested order — no
//! space-sharing, so service times are identical to standalone runs
//! and only the scheduling differs.

use crate::alloc::{BuddyAllocator, DeadImpact};
use crate::job::JobOutput;
use crate::subcube::Subcube;
use crate::trace::Trace;
use serde::Serialize;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use vmp_hypercube::cost::CostModel;

/// Admission order for queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Strict arrival order; the head blocks until it fits.
    Fifo,
    /// Shortest-predicted-job-first among jobs that currently fit,
    /// ranked by the `vmp::analysis` cost predictions.
    Spjf,
}

impl Policy {
    /// Label used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "subcube-fifo",
            Policy::Spjf => "subcube-spjf",
        }
    }
}

/// Everything that happened to one job.
#[derive(Debug, Clone, Serialize)]
pub struct JobRecord {
    /// Trace id of the job.
    pub id: usize,
    /// Application name.
    pub kind: &'static str,
    /// Requested subcube order.
    pub order: u32,
    /// Arrival time, microseconds.
    pub arrival_us: f64,
    /// Start of the attempt that completed, microseconds.
    pub start_us: f64,
    /// Completion time, microseconds.
    pub finish_us: f64,
    /// Service time of the completing attempt, microseconds.
    pub service_us: f64,
    /// Queueing latency: `start_us - arrival_us`.
    pub wait_us: f64,
    /// Execution attempts (> 1 means the job was aborted by a failure).
    pub attempts: u32,
    /// Whether the completing attempt ran in degraded mode.
    pub degraded: bool,
    /// Canonical result words (the bit-identity contract).
    pub words: Vec<u64>,
}

/// Aggregate schedule quality, serialised into `BENCH_sched.json`.
#[derive(Debug, Clone, Serialize)]
pub struct Metrics {
    /// Scheduler label (`fcfs-whole-machine`, `subcube-fifo`, ...).
    pub scheduler: String,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs permanently unschedulable after failures (never completed).
    pub skipped: usize,
    /// Failure-triggered aborts (each re-queues the job).
    pub aborts: u32,
    /// Completions that ran in degraded mode.
    pub degraded_runs: usize,
    /// Last completion time, microseconds.
    pub makespan_us: f64,
    /// Jobs per simulated second.
    pub throughput_jobs_per_s: f64,
    /// Median queueing latency, microseconds.
    pub p50_wait_us: f64,
    /// 99th-percentile queueing latency (nearest rank), microseconds.
    pub p99_wait_us: f64,
    /// Node-time actually rented to jobs over `p x makespan`.
    pub utilization: f64,
}

/// One scheduler run over a trace: per-job records plus the aggregate.
#[derive(Debug, Clone, Serialize)]
pub struct SimOutcome {
    /// Per-job fates, in trace id order.
    pub records: Vec<JobRecord>,
    /// The aggregate.
    pub metrics: Metrics,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Machine dimension (`p = 2^dim`).
    pub dim: u32,
    /// Cost model for every job machine.
    pub cost: CostModel,
    /// Admission policy.
    pub policy: Policy,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum What {
    Arrival(usize),
    Failure(usize),
    Done { job: usize, attempt: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    what: What,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

struct Running {
    job: usize,
    sub: Subcube,
    degraded: bool,
    start_us: f64,
    output: JobOutput,
}

struct Sim<'t> {
    trace: &'t Trace,
    cfg: SimConfig,
    alloc: BuddyAllocator,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    queue: VecDeque<usize>,
    running: Vec<Running>,
    attempts: Vec<u32>,
    records: Vec<Option<JobRecord>>,
    skipped: Vec<usize>,
    aborts: u32,
    rented_node_us: f64,
}

impl<'t> Sim<'t> {
    fn new(trace: &'t Trace, cfg: SimConfig) -> Self {
        let n = trace.jobs.len();
        let mut sim = Sim {
            trace,
            cfg,
            alloc: BuddyAllocator::new(cfg.dim),
            heap: BinaryHeap::new(),
            seq: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            attempts: vec![0; n],
            records: (0..n).map(|_| None).collect(),
            skipped: Vec::new(),
            aborts: 0,
            rented_node_us: 0.0,
        };
        for (i, j) in trace.jobs.iter().enumerate() {
            assert!(
                j.order <= cfg.dim,
                "job {} wants order {} on a dim-{} machine",
                j.id,
                j.order,
                cfg.dim
            );
            sim.push(j.arrival_us, What::Arrival(i));
        }
        for (k, f) in trace.failures.iter().enumerate() {
            sim.push(f.at_us, What::Failure(k));
        }
        sim
    }

    fn push(&mut self, time: f64, what: What) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, what }));
    }

    fn run(mut self) -> SimOutcome {
        while let Some(Reverse(ev)) = self.heap.pop() {
            let now = ev.time;
            match ev.what {
                What::Arrival(i) => {
                    self.queue.push_back(i);
                    self.try_admit(now);
                }
                What::Failure(k) => {
                    self.on_failure(now, self.trace.failures[k].node);
                }
                What::Done { job, attempt } => {
                    if attempt == self.attempts[job] {
                        self.on_done(now, job);
                    }
                    // else: a stale completion of an aborted attempt.
                }
            }
        }
        self.finish()
    }

    fn on_failure(&mut self, now: f64, node: usize) {
        match self.alloc.mark_dead(node) {
            DeadImpact::Allocated(sub) => {
                // Abort the tenant: its completion goes stale, its block
                // (minus the dead leaf) returns to the pool, and the job
                // rejoins the queue head for re-planning.
                let at = self
                    .running
                    .iter()
                    .position(|r| r.sub == sub)
                    .unwrap_or_else(|| panic!("allocated {sub:?} has no running tenant"));
                let r = self.running.swap_remove(at);
                self.attempts[r.job] += 1;
                self.aborts += 1;
                self.alloc.release(sub);
                self.queue.push_front(r.job);
                self.try_admit(now);
            }
            DeadImpact::Free | DeadImpact::AlreadyDead => {}
        }
    }

    fn on_done(&mut self, now: f64, job: usize) {
        let at = self
            .running
            .iter()
            .position(|r| r.job == job)
            .unwrap_or_else(|| panic!("completed job {job} is not running"));
        let r = self.running.swap_remove(at);
        self.alloc.release(r.sub);
        let spec = &self.trace.jobs[job];
        self.rented_node_us += r.sub.len() as f64 * r.output.service_us;
        self.records[job] = Some(JobRecord {
            id: spec.id,
            kind: spec.kind.name(),
            order: spec.order,
            arrival_us: spec.arrival_us,
            start_us: r.start_us,
            finish_us: now,
            service_us: r.output.service_us,
            wait_us: r.start_us - spec.arrival_us,
            attempts: self.attempts[job] + 1,
            degraded: r.degraded,
            words: r.output.words,
        });
        self.try_admit(now);
    }

    /// Admit every queued job the policy and the pool allow right now.
    fn try_admit(&mut self, now: f64) {
        match self.cfg.policy {
            Policy::Fifo => self.admit_fifo(now),
            Policy::Spjf => self.admit_spjf(now),
        }
    }

    fn admit_fifo(&mut self, now: f64) {
        while let Some(&job) = self.queue.front() {
            if self.admit_one(now, job) {
                self.queue.pop_front();
            } else if self.permanently_unschedulable(job) {
                self.queue.pop_front();
                self.skipped.push(job);
            } else {
                break; // head-of-line blocking: FIFO waits.
            }
        }
    }

    fn admit_spjf(&mut self, now: f64) {
        loop {
            // Rank the queue by predicted service time (ties by queue
            // position, i.e. arrival order) and admit the shortest job
            // that fits; repeat until a pass admits nothing.
            let mut ranked: Vec<(f64, usize)> = self
                .queue
                .iter()
                .map(|&job| {
                    let spec = &self.trace.jobs[job];
                    (spec.predicted_us(spec.order, &self.cfg.cost), job)
                })
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut admitted = None;
            for &(_, job) in &ranked {
                if self.admit_one(now, job) {
                    admitted = Some(job);
                    break;
                }
                if self.permanently_unschedulable(job) {
                    self.queue.retain(|&q| q != job);
                    self.skipped.push(job);
                }
            }
            match admitted {
                Some(job) => self.queue.retain(|&q| q != job),
                None => break,
            }
        }
    }

    /// Try to start `job` right now. Healthy block first; a degraded
    /// single-casualty block only when no healthy block of the order
    /// can ever exist again.
    fn admit_one(&mut self, now: f64, job: usize) -> bool {
        let order = self.trace.jobs[job].order;
        if let Some(sub) = self.alloc.allocate(order) {
            self.start(now, job, sub, None);
            return true;
        }
        if !self.alloc.can_ever_allocate(order) {
            if let Some((sub, dead_local)) = self.alloc.allocate_degraded(order) {
                self.start(now, job, sub, Some(dead_local));
                return true;
            }
        }
        false
    }

    /// No healthy block and no single-casualty block of this order can
    /// ever form again — the job can never run.
    fn permanently_unschedulable(&self, job: usize) -> bool {
        let order = self.trace.jobs[job].order;
        if self.alloc.can_ever_allocate(order) {
            return false;
        }
        let len = 1usize << order;
        !(0..self.alloc.p()).step_by(len).any(|base| {
            let block = Subcube::new(base, order);
            self.alloc.dead().iter().filter(|&&n| block.contains(n)).count() <= 1
        })
    }

    fn start(&mut self, now: f64, job: usize, sub: Subcube, dead_local: Option<usize>) {
        let spec = &self.trace.jobs[job];
        let dead: Vec<usize> = dead_local.into_iter().collect();
        // Execution is eager: the job's machine is private (a fresh
        // logical cube), so its result and service time are fixed at
        // admission; only the completion *event* is deferred.
        let output = spec.execute(self.cfg.cost, &dead);
        let attempt = self.attempts[job];
        self.push(now + output.service_us, What::Done { job, attempt });
        self.running.push(Running { job, sub, degraded: !dead.is_empty(), start_us: now, output });
    }

    fn finish(self) -> SimOutcome {
        assert!(self.running.is_empty(), "event loop drained with tenants running");
        assert!(self.queue.is_empty(), "event loop drained with jobs queued");
        let records: Vec<JobRecord> = self.records.into_iter().flatten().collect();
        let metrics = summarize(
            self.cfg.policy.name(),
            &records,
            self.skipped.len(),
            self.aborts,
            1usize << self.cfg.dim,
            self.rented_node_us,
        );
        SimOutcome { records, metrics }
    }
}

/// Space-share `trace` on one `2^dim` machine under `cfg`.
#[must_use]
pub fn run_trace(trace: &Trace, cfg: SimConfig) -> SimOutcome {
    Sim::new(trace, cfg).run()
}

/// The whole-machine FCFS baseline: one job at a time, each holding all
/// `p` nodes exclusively while running on its requested order. Service
/// times equal the standalone runs; only the (non-)sharing differs.
/// Machine failures are ignored — strictly favourable to the baseline.
#[must_use]
pub fn run_fcfs(trace: &Trace, dim: u32, cost: CostModel) -> SimOutcome {
    let p = 1usize << dim;
    let mut clock = 0.0f64;
    let mut rented = 0.0f64;
    let mut records = Vec::with_capacity(trace.jobs.len());
    for spec in &trace.jobs {
        let start = clock.max(spec.arrival_us);
        let out = spec.run_standalone(cost);
        let finish = start + out.service_us;
        rented += p as f64 * out.service_us;
        records.push(JobRecord {
            id: spec.id,
            kind: spec.kind.name(),
            order: spec.order,
            arrival_us: spec.arrival_us,
            start_us: start,
            finish_us: finish,
            service_us: out.service_us,
            wait_us: start - spec.arrival_us,
            attempts: 1,
            degraded: false,
            words: out.words,
        });
        clock = finish;
    }
    let metrics = summarize("fcfs-whole-machine", &records, 0, 0, p, rented);
    SimOutcome { records, metrics }
}

fn summarize(
    scheduler: &str,
    records: &[JobRecord],
    skipped: usize,
    aborts: u32,
    p: usize,
    rented_node_us: f64,
) -> Metrics {
    let makespan = records.iter().map(|r| r.finish_us).fold(0.0f64, f64::max);
    let mut waits: Vec<f64> = records.iter().map(|r| r.wait_us).collect();
    waits.sort_by(|a, b| a.total_cmp(b));
    Metrics {
        scheduler: scheduler.to_owned(),
        completed: records.len(),
        skipped,
        aborts,
        degraded_runs: records.iter().filter(|r| r.degraded).count(),
        makespan_us: makespan,
        throughput_jobs_per_s: if makespan > 0.0 {
            records.len() as f64 / makespan * 1.0e6
        } else {
            0.0
        },
        p50_wait_us: percentile(&waits, 0.50),
        p99_wait_us: percentile(&waits, 0.99),
        utilization: if makespan > 0.0 { rented_node_us / (p as f64 * makespan) } else { 0.0 },
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceParams;

    fn cfg(policy: Policy) -> SimConfig {
        SimConfig { dim: 6, cost: CostModel::cm2(), policy }
    }

    #[test]
    fn every_job_completes_and_matches_standalone_bits() {
        let trace = Trace::generate(TraceParams::smoke(), 7);
        for policy in [Policy::Fifo, Policy::Spjf] {
            let out = run_trace(&trace, cfg(policy));
            assert_eq!(out.metrics.completed + out.metrics.skipped, trace.jobs.len());
            for r in &out.records {
                let standalone = trace.jobs[r.id].run_standalone(CostModel::cm2());
                assert_eq!(r.words, standalone.words, "job {} under {:?}", r.id, policy);
                assert!(r.wait_us >= 0.0 && r.finish_us >= r.start_us);
            }
        }
    }

    #[test]
    fn failures_abort_and_replan() {
        // One failure mid-trace on a busy low node: at least one run
        // should show attempts > 1 or the pool visibly shrink.
        let trace = Trace::generate(TraceParams::smoke(), 1989);
        let out = run_trace(&trace, cfg(Policy::Fifo));
        assert_eq!(out.metrics.completed + out.metrics.skipped, trace.jobs.len());
        // The allocator lost exactly the dead leaves; jobs still finish.
        assert!(out.metrics.completed > 0);
    }

    #[test]
    fn schedulers_beat_the_whole_machine_baseline() {
        let trace = Trace::generate(TraceParams::smoke(), 3);
        let base = run_fcfs(&trace, 6, CostModel::cm2());
        let fifo = run_trace(&trace, cfg(Policy::Fifo));
        assert!(
            fifo.metrics.throughput_jobs_per_s > base.metrics.throughput_jobs_per_s,
            "space-sharing must outrun exclusive FCFS ({} vs {})",
            fifo.metrics.throughput_jobs_per_s,
            base.metrics.throughput_jobs_per_s
        );
        assert!(fifo.metrics.p99_wait_us <= base.metrics.p99_wait_us);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
