//! # vmp-sched — multi-tenant subcube scheduling
//!
//! The paper specifies its primitives "independently of machine size"
//! and embeds every object through load-balanced Gray-code subcube
//! maps. This crate cashes that property in: a `2^d`-node machine is
//! **space-shared** among many independent jobs — the paper's three
//! applications — each running on a disjoint aligned subcube exactly
//! as it would on a machine of its own, bit for bit.
//!
//! * [`subcube`] — aligned subcubes (low dimensions free) and why the
//!   logical-to-physical map is a cube isomorphism;
//! * [`alloc`] — the buddy allocator: allocate/release/coalesce plus
//!   dead-node quarantine and single-casualty degraded blocks;
//! * [`job`] — vector-matrix multiply, Gaussian elimination, and
//!   simplex as seeded, self-describing jobs with `vmp::analysis`
//!   service-time predictions and canonical result words;
//! * [`trace`] — seeded arrival traces with bursty arrivals, fault
//!   plans, and machine-level node failures;
//! * [`sched`] — the deterministic event loop: FIFO and
//!   shortest-predicted-job-first admission, failure-driven abort and
//!   re-planning, graceful-degradation fallback, and the whole-machine
//!   FCFS baseline it is measured against (`reproduce -- sched`).

#![warn(missing_docs)]

pub mod alloc;
pub mod job;
pub mod sched;
pub mod subcube;
pub mod trace;

pub use alloc::{BuddyAllocator, DeadImpact};
pub use job::{JobKind, JobOutput, JobSpec};
pub use sched::{run_fcfs, run_trace, JobRecord, Metrics, Policy, SimConfig, SimOutcome};
pub use subcube::Subcube;
pub use trace::{FailureEvent, Trace, TraceParams};
