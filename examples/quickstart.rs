//! Quickstart: the four primitives on a simulated 1024-processor
//! Connection-Machine-style hypercube.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use four_vmp::prelude::*;

fn main() {
    // A 2^10 = 1024-processor machine with CM-2-like cost constants,
    // configured as a 32x32 processor grid.
    let hc = &mut Hypercube::cm2(10);
    let grid = ProcGrid::square(hc.cube());
    println!(
        "machine: p = {} processors ({}-cube), grid {}x{}",
        hc.p(),
        hc.dim(),
        grid.pr(),
        grid.pc()
    );

    // A 512x512 matrix, cyclically embedded (load-balanced: every node
    // holds a 16x16 block).
    let n = 512usize;
    let a = DistMatrix::from_fn(
        MatrixLayout::cyclic(MatShape::new(n, n), grid),
        |i, j| 1.0 / ((i + j + 1) as f64), // a Hilbert-ish test matrix
    );
    println!("matrix: {n}x{n} = {} elements, m/p = {}", n * n, n * n / hc.p());

    // 1. reduce: combine all rows into one row vector (column sums).
    hc.reset();
    let col_sums = reduce(hc, &a, Axis::Row, Sum);
    println!(
        "\nreduce(Row, +):        {:>9.1} us   col_sums[0] = {:.4}",
        hc.elapsed_us(),
        col_sums.get(0)
    );

    // 2. distribute: stack that vector back into a full matrix.
    hc.reset();
    let stacked = distribute(hc, &col_sums, n, Dist::Cyclic);
    println!(
        "distribute (x{n}):      {:>9.1} us   stacked[7][0] = {:.4}",
        hc.elapsed_us(),
        stacked.get(7, 0)
    );

    // 3. extract: pull out row 100. The result is *concentrated* on the
    //    grid row that owns matrix row 100 — the embedding the data
    //    placement dictates.
    hc.reset();
    let row100 = extract(hc, &a, Axis::Row, 100);
    println!("extract(Row, 100):     {:>9.1} us   (concentrated embedding)", hc.elapsed_us());

    // An explicit embedding change: replicate it across the grid.
    hc.reset();
    let row100_rep = replicate(hc, &row100);
    println!("replicate:             {:>9.1} us   (embedding change)", hc.elapsed_us());

    // 4. insert: overwrite row 0 with it — local, since it's replicated.
    let mut b = a.clone();
    hc.reset();
    insert(hc, &mut b, Axis::Row, 0, &row100_rep);
    println!(
        "insert(Row, 0):        {:>9.1} us   b[0][3] == a[100][3]: {}",
        hc.elapsed_us(),
        b.get(0, 3) == a.get(100, 3)
    );

    // Compose: y = x A in two primitive operations.
    let x = DistVector::from_fn(
        VectorLayout::aligned(
            n,
            a.layout().grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        ),
        |i| (i % 7) as f64,
    );
    hc.reset();
    let y = vecmat(hc, &x, &a);
    println!("\nvecmat (y = xA):       {:>9.1} us   y[0] = {:.4}", hc.elapsed_us(), y.get(0));
    println!(
        "counters: {} message supersteps, {} elements transferred, {} flops",
        hc.counters().message_steps,
        hc.counters().elements_transferred,
        hc.counters().flops
    );
}
