//! Jacobi relaxation of the 2-D Poisson equation via NEWS shifts on the
//! Gray-coded grid embedding — a stencil application beyond the paper's
//! three, in the spirit of the PDE reports surrounding it.
//!
//! ```text
//! cargo run --release --example poisson_stencil [n] [iterations] [cube_dim]
//! ```

use four_vmp::algos::serial::Dense;
use four_vmp::algos::stencil::{jacobi_poisson, jacobi_poisson_serial, poisson_residual};
use four_vmp::hypercube::Cube;
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    // A point source in the middle of the unit square, u = 0 boundary.
    let fd = Dense::from_fn(n, n, |i, j| if i == n / 2 && j == n / 2 { 1.0 } else { 0.0 });
    let h2 = 1.0 / (((n + 1) * (n + 1)) as f64);
    println!(
        "-laplace(u) = f on a {n}x{n} grid, point source, {iterations} Jacobi sweeps, p = {}",
        1usize << dim
    );

    let hc = &mut Hypercube::cm2(dim);
    let grid = ProcGrid::square(Cube::new(dim));
    // Block layout: shifts move only block-boundary lines.
    let f =
        DistMatrix::from_fn(MatrixLayout::block(MatShape::new(n, n), grid), |i, j| fd.get(i, j));
    let u = jacobi_poisson(hc, &f, h2, iterations);

    let ud_rows = u.to_dense();
    let ud = Dense::from_rows(&ud_rows);
    let serial = jacobi_poisson_serial(&fd, h2, iterations);
    println!(
        "bit-identical to serial: {}",
        (0..n).all(|i| (0..n).all(|j| ud.get(i, j) == serial.get(i, j)))
    );
    println!(
        "residual ||-lap(u)/h2 - f||_inf = {:.3e} (vs {:.3e} at start)",
        poisson_residual(&ud, &fd, h2),
        poisson_residual(&Dense::zeros(n, n), &fd, h2)
    );
    println!(
        "simulated time {:.2} ms = {:.1} us/sweep  ({} message supersteps)",
        hc.elapsed_us() / 1e3,
        hc.elapsed_us() / iterations as f64,
        hc.counters().message_steps
    );

    // A small contour of the solution around the source.
    println!("\nfield cross-section through the source row:");
    let mid = n / 2;
    let step = (n / 16).max(1);
    let line: Vec<String> = (0..n)
        .step_by(step)
        .map(|j| format!("{:.1}", ud.get(mid, j) / ud.get(mid, mid) * 9.0))
        .collect();
    println!("  {}", line.join(" "));
}
