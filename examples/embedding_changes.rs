//! Embedding changes: the vector and matrix re-embeddings the primitives
//! "indicate", with their simulated costs and traffic.
//!
//! ```text
//! cargo run --release --example embedding_changes
//! ```

use four_vmp::core::remap;
use four_vmp::prelude::*;

fn main() {
    let dim = 8u32;
    let n = 256usize;
    let hc0 = Hypercube::cm2(dim);
    let grid = ProcGrid::square(hc0.cube());
    println!("p = {} ({}x{} grid), vector length {n}\n", hc0.p(), grid.pr(), grid.pc());
    println!("{:<48} {:>10} {:>6} {:>9}", "embedding change", "time", "steps", "elements");

    let show = |name: &str, hc: &Hypercube| {
        println!(
            "{name:<48} {:>8.1}us {:>6} {:>9}",
            hc.elapsed_us(),
            hc.counters().message_steps,
            hc.counters().elements_transferred
        );
    };

    // Start from a concentrated row vector (what extract returns).
    let conc =
        VectorLayout::aligned(n, grid.clone(), Axis::Row, Placement::Concentrated(5), Dist::Cyclic);
    let v = DistVector::from_fn(conc, |i| (i as f64).sqrt());

    let mut hc = Hypercube::cm2(dim);
    let vr = remap::replicate(&mut hc, &v);
    show("concentrated -> replicated (tree broadcast)", &hc);

    let mut hc = Hypercube::cm2(dim);
    let _ = remap::concentrate(&mut hc, &vr, 0);
    show("replicated -> concentrated (drop copies: free)", &hc);

    let mut hc = Hypercube::cm2(dim);
    let _ = remap::concentrate(&mut hc, &v, 12);
    show("concentrated line 5 -> line 12 (routed)", &hc);

    let mut hc = Hypercube::cm2(dim);
    let lin = remap::remap_vector(&mut hc, &vr, VectorLayout::linear(n, grid.clone(), Dist::Block));
    show("row-aligned -> linear (balanced)", &hc);
    assert_eq!(lin.to_dense(), v.to_dense(), "content preserved");

    let mut hc = Hypercube::cm2(dim);
    let flipped = remap::remap_vector(
        &mut hc,
        &vr,
        VectorLayout::aligned(n, grid.clone(), Axis::Col, Placement::Replicated, Dist::Cyclic),
    );
    show("row-aligned -> col-aligned (axis flip)", &hc);
    assert_eq!(flipped.to_dense(), v.to_dense());

    // Matrix-level changes.
    let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid.clone()), |i, j| {
        (i * n + j) as f64
    });

    let mut hc = Hypercube::cm2(dim);
    let at = remap::transpose(&mut hc, &a);
    show("matrix transpose (dimension permutation)", &hc);
    assert_eq!(at.get(3, 7), a.get(7, 3));

    let mut hc = Hypercube::cm2(dim);
    let _ = remap::redistribute(&mut hc, &a, MatrixLayout::block(MatShape::new(n, n), grid));
    show("matrix cyclic -> block redistribution", &hc);

    println!("\nevery change is a blocked dimension-ordered route: at most d = {dim} supersteps.");
}
