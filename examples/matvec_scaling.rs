//! Machine-size independence and scaling of the vector-matrix multiply:
//! the same program runs unchanged from p = 1 to p = 4096, and the
//! simulated time follows `O(m/p + lg p)`.
//!
//! ```text
//! cargo run --release --example matvec_scaling [n]
//! ```

use four_vmp::algos::workloads;
use four_vmp::core::analysis;
use four_vmp::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(512);
    let d = workloads::random_matrix(n, n, 3);
    let xh = workloads::random_vector(n, 4);
    let serial_y = d.vecmat(&xh);
    let cost = CostModel::cm2();
    let serial_us = cost.gamma * 2.0 * (n * n) as f64;

    println!(
        "y = x A with n = {n} (m = {} elements), the SAME program on every machine size:\n",
        n * n
    );
    println!("   p     m/p   m>p*lgp   simulated      speedup   efficiency   max|err|");
    for dim in [0u32, 2, 4, 6, 8, 10, 12] {
        let p = 1usize << dim;
        let hc = &mut Hypercube::cm2(dim);
        let grid = ProcGrid::square(hc.cube());
        let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| {
            d.get(i, j)
        });
        let x = DistVector::from_fn(
            VectorLayout::aligned(
                n,
                a.layout().grid().clone(),
                Axis::Col,
                Placement::Replicated,
                Dist::Cyclic,
            ),
            |i| xh[i],
        );
        let y = vecmat(hc, &x, &a);
        let t = hc.elapsed_us();
        let err =
            y.to_dense().iter().zip(&serial_y).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        println!(
            "{:>5}  {:>6}   {:>7}   {:>9.1} us   {:>7.2}x   {:>9.3}   {err:.1e}",
            p,
            n * n / p,
            if analysis::in_optimal_regime(n * n, p) { "yes" } else { "no" },
            t,
            serial_us / t,
            analysis::efficiency(serial_us, p, t),
        );
    }
    println!("\nthe crossover where adding processors stops paying sits where m/p");
    println!("meets the lg p start-up term — the paper's m > p lg p regime.");
}
