//! Simplex on the simulated hypercube: solve a random dense LP and the
//! Klee–Minty worst case, cross-checking against the serial oracle
//! (the two are bit-identical by construction).
//!
//! ```text
//! cargo run --release --example simplex_lp [m] [n] [cube_dim]
//! ```

use four_vmp::algos::serial::{simplex_solve, SimplexStatus};
use four_vmp::algos::{simplex, workloads};
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    // A bounded, feasible random LP.
    let lp = workloads::random_dense_lp(m, n, 7);
    println!(
        "LP: maximise c'x s.t. Ax <= b, x >= 0   ({m} constraints, {n} variables, tableau {}x{})",
        m + 1,
        n + m + 1
    );

    let hc = &mut Hypercube::cm2(dim);
    let grid = ProcGrid::square(hc.cube());
    let par = simplex::solve_parallel(hc, &lp, grid, 10_000);
    let ser = simplex_solve(&lp, 10_000);

    assert_eq!(par.status, SimplexStatus::Optimal);
    println!(
        "parallel: z* = {:.6} after {} pivots, {:.2} ms simulated on p = {}",
        par.objective,
        par.iterations,
        hc.elapsed_us() / 1e3,
        1usize << dim
    );
    println!("serial:   z* = {:.6} after {} pivots", ser.objective, ser.iterations);
    println!(
        "bit-identical to the serial oracle: {}",
        (par.objective == ser.objective && par.x == ser.x)
    );
    assert!(lp.is_feasible(&par.x, 1e-7), "solution feasibility certificate");

    // The Klee-Minty cube: Dantzig's rule walks all 2^d - 1 vertices.
    println!("\nKlee-Minty cubes (Dantzig-rule worst case):");
    println!("  d   pivots   expected   z*");
    for d in 3..=8usize {
        let km = workloads::klee_minty(d);
        let hc2 = &mut Hypercube::cm2(6);
        let r = simplex::solve_parallel(hc2, &km, ProcGrid::square(hc2.cube()), 1 << (d + 2));
        println!("  {d}   {:>6}   {:>8}   {:.0}", r.iterations, (1 << d) - 1, r.objective);
        assert_eq!(r.iterations, (1 << d) - 1);
    }
    println!("\nthe exponential pivot path survives parallelisation untouched —");
    println!("the primitives parallelise each pivot, not the pivot sequence.");
}
