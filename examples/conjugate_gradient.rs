//! Conjugate gradient on the primitives: an iterative solver composed
//! from `matvec` (elementwise + reduce), dot products (zip + reduce) and
//! one embedding change per iteration.
//!
//! ```text
//! cargo run --release --example conjugate_gradient [n] [cube_dim]
//! ```

use four_vmp::algos::cg::{cg_solve, cg_solve_serial, CgOptions};
use four_vmp::algos::workloads;
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let (a, b, x_true) = workloads::spd_system(n, 11);
    println!("SPD system: {n}x{n} (A = M'M + nI), machine: p = {}", 1usize << dim);

    let hc = &mut Hypercube::cm2(dim);
    let grid = ProcGrid::square(hc.cube());
    let am =
        DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| a.get(i, j));

    let out = cg_solve(hc, &am, &b, CgOptions::default());
    let err = out.x.iter().zip(&x_true).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
    println!(
        "parallel CG: {} iterations, residual {:.2e}, max error vs truth {err:.2e}",
        out.iterations, out.residual_norm
    );
    println!(
        "simulated time {:.2} ms  ({} message supersteps, {} flops)",
        hc.elapsed_us() / 1e3,
        hc.counters().message_steps,
        hc.counters().flops
    );

    let serial = cg_solve_serial(&a, &b, CgOptions::default());
    println!(
        "serial CG:   {} iterations, residual {:.2e}",
        serial.iterations, serial.residual_norm
    );

    // Per-iteration anatomy: one matvec, one axis-flip remap, two dots,
    // three vector updates.
    println!(
        "\neach iteration = 1 matvec + 1 embedding change (axis flip) + 2 dot products + 3 AXPYs"
    );
    println!("the embedding change is priced like any other data movement — the");
    println!("matvec output is column-aligned, the iteration vectors row-aligned.");
}
