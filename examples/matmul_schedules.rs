//! Distributed matrix multiply: the rank-1 (pure primitives) schedule vs
//! panel blocking, plus a two-phase simplex on a general-form LP — the
//! extension applications beyond the paper's three.
//!
//! ```text
//! cargo run --release --example matmul_schedules [n] [cube_dim]
//! ```

use four_vmp::algos::serial::{simplex::GeneralLp, Dense};
use four_vmp::algos::{matmul, matmul_panelled, solve_general_parallel, workloads};
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let da = workloads::random_matrix(n, n, 1);
    let db = workloads::random_matrix(n, n, 2);
    let make = || {
        let grid = ProcGrid::square(Cube::new(dim));
        (
            DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid.clone()), |i, j| {
                da.get(i, j)
            }),
            DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| {
                db.get(i, j)
            }),
        )
    };
    use four_vmp::hypercube::Cube;

    println!("C = A B, {n}x{n} on p = {} — schedule comparison:\n", 1usize << dim);
    println!("{:<28} {:>12} {:>12}", "schedule", "time", "msg steps");

    let (a, b) = make();
    let mut hc = Hypercube::cm2(dim);
    let c_rank1 = matmul(&mut hc, &a, &b);
    println!(
        "{:<28} {:>10.2}ms {:>12}",
        "rank-1 (pure primitives)",
        hc.elapsed_us() / 1e3,
        hc.counters().message_steps
    );

    for panel in [2usize, 4, 8, 16] {
        let (a, b) = make();
        let mut hc = Hypercube::cm2(dim);
        let c = matmul_panelled(&mut hc, &a, &b, panel);
        assert_eq!(c.to_dense(), c_rank1.to_dense(), "identical floats");
        println!(
            "{:<28} {:>10.2}ms {:>12}",
            format!("panelled (b = {panel})"),
            hc.elapsed_us() / 1e3,
            hc.counters().message_steps
        );
    }
    println!("\npanelling trades start-ups (k/b broadcasts instead of k) for wider messages.");

    // A general-form LP via the two-phase simplex.
    println!("\ntwo-phase simplex on a general-form LP (negative rhs => phase-1 artificials):");
    let g = GeneralLp::new(
        Dense::from_rows(&[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, 0.0]]),
        vec![8.0, -3.0, 5.0],
        vec![1.0, 1.0],
    );
    let mut hc = Hypercube::cm2(dim.min(6));
    let r = solve_general_parallel(&mut hc, &g, ProcGrid::square(Cube::new(dim.min(6))), 500);
    println!(
        "  max x+y s.t. x+y<=8, x+y>=3, x<=5  ->  {:?}, z* = {:.3}, x = {:?}, {} pivots",
        r.status, r.objective, r.x, r.iterations
    );
}
