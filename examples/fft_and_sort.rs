//! The hypercube FFT and bitonic sort: two more kernels from the
//! technical-report corpus around the paper, sharing the same
//! stage structure (power-of-two strides = cube neighbour exchanges).
//!
//! ```text
//! cargo run --release --example fft_and_sort [n] [cube_dim]
//! ```

use four_vmp::algos::fft::{dft_serial, fft, ifft, Cplx};
use four_vmp::algos::sort::sort_ascending;
use four_vmp::hypercube::Cube;
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    assert!(n.is_power_of_two(), "n must be a power of two");

    let grid = ProcGrid::square(Cube::new(dim));
    let layout = VectorLayout::linear(n, grid.clone(), Dist::Block);

    // --- FFT: two tones + verification against the naive DFT ---------
    let x: Vec<Cplx> = (0..n)
        .map(|i| {
            let th1 = 2.0 * std::f64::consts::PI * (3 * i) as f64 / n as f64;
            let th2 = 2.0 * std::f64::consts::PI * (17 * i) as f64 / n as f64;
            Cplx::new(th1.sin() + 0.5 * th2.cos(), 0.0)
        })
        .collect();
    let v = DistVector::from_slice(layout.clone(), &x);

    let hc = &mut Hypercube::cm2(dim);
    let spectrum = fft(hc, &v);
    let t_fft = hc.elapsed_us();
    let spec = spectrum.to_dense();
    let mut peaks: Vec<(usize, f64)> = spec.iter().enumerate().map(|(k, c)| (k, c.abs())).collect();
    peaks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    println!("FFT of two tones (bins 3 and 17), n = {n}, p = {}:", 1usize << dim);
    println!("  top bins: {:?}", peaks[..4].iter().map(|&(k, _)| k).collect::<Vec<_>>());
    println!(
        "  simulated time {:.1} us, {} message supersteps",
        t_fft,
        hc.counters().message_steps
    );

    if n <= 512 {
        let naive = dft_serial(&x, false);
        let err = spec.iter().zip(&naive).map(|(a, b)| a.sub(*b).abs()).fold(0.0, f64::max);
        println!("  max |FFT - naive DFT| = {err:.2e}");
    }
    let back = ifft(hc, &spectrum).to_dense();
    let rt = back.iter().zip(&x).map(|(a, b)| a.sub(*b).abs()).fold(0.0, f64::max);
    println!("  round-trip |ifft(fft(x)) - x| = {rt:.2e}");

    // --- Bitonic sort -------------------------------------------------
    let data: Vec<i64> = (0..n).map(|i| ((i * 7919 + 31) % (3 * n)) as i64 - n as i64).collect();
    let dv = DistVector::from_slice(VectorLayout::linear(n, grid, Dist::Block), &data);
    let hc2 = &mut Hypercube::cm2(dim);
    let sorted = sort_ascending(hc2, &dv).to_dense();
    let mut expect = data.clone();
    expect.sort_unstable();
    println!("\nbitonic sort of {n} keys: correct = {}", sorted == expect);
    println!(
        "  simulated time {:.1} us, {} exchange supersteps (lg^2 n structure)",
        hc2.elapsed_us(),
        hc2.counters().message_steps
    );
}
