//! Gaussian elimination on the simulated hypercube: solve a random
//! diagonally dominant system, verify against the serial oracle, and
//! show what the cyclic embedding buys.
//!
//! ```text
//! cargo run --release --example gaussian_elimination [n] [cube_dim]
//! ```

use four_vmp::algos::serial;
use four_vmp::algos::{gauss, workloads};
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let (a, b, x_true) = workloads::diag_dominant_system(n, 42);
    println!("system: {n}x{n} diagonally dominant, machine: p = {}", 1usize << dim);

    // Parallel solve on the machine.
    let hc = &mut Hypercube::cm2(dim);
    let grid = ProcGrid::square(hc.cube());
    let (x, stats) = gauss::ge_solve(hc, &a, &b, grid).expect("nonsingular");
    let t_par = hc.elapsed_us();

    // Serial oracle.
    let x_serial = serial::lu_solve(&a, &b).expect("nonsingular");

    let err_truth = x.iter().zip(&x_true).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
    let err_serial = x.iter().zip(&x_serial).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
    println!("row swaps: {}   max |x - x_true| = {err_truth:.2e}   max |x - x_serial| = {err_serial:.2e}", stats.row_swaps);

    // Modelled serial time vs simulated parallel time.
    let cost = CostModel::cm2();
    let t_ser = cost.gamma * 2.0 * (n as f64).powi(3) / 3.0;
    println!(
        "simulated parallel: {:.2} ms   serial model: {:.2} ms   speedup: {:.2}x on p = {}",
        t_par / 1e3,
        t_ser / 1e3,
        t_ser / t_par,
        1usize << dim
    );

    // A matrix that genuinely needs pivoting.
    let ps = workloads::pivot_stress_matrix(n.min(64), 7);
    let xt: Vec<f64> = (0..ps.rows()).map(|i| (i % 5) as f64 - 2.0).collect();
    let pb = ps.matvec(&xt);
    let hc2 = &mut Hypercube::cm2(dim);
    let (xp, pstats) =
        gauss::ge_solve(hc2, &ps, &pb, ProcGrid::square(hc2.cube())).expect("nonsingular");
    let perr = xp.iter().zip(&xt).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
    println!(
        "\npivot-stress {}x{}: {} row swaps, max error {perr:.2e} (no pivoting would blow up)",
        ps.rows(),
        ps.rows(),
        pstats.row_swaps
    );

    // Layout ablation: cyclic keeps the shrinking active submatrix
    // spread over all processors; block concentrates it.
    let small_dim = 6u32.min(dim);
    for (name, cyclic) in [("cyclic", true), ("block", false)] {
        let hc3 = &mut Hypercube::cm2(small_dim);
        let grid3 = ProcGrid::square(hc3.cube());
        let layout = if cyclic {
            MatrixLayout::cyclic(MatShape::new(n, n + 1), grid3)
        } else {
            MatrixLayout::block(MatShape::new(n, n + 1), grid3)
        };
        let mut aug = DistMatrix::from_fn(layout, |i, j| if j < n { a.get(i, j) } else { b[i] });
        gauss::ge_solve_dist(hc3, &mut aug).expect("nonsingular");
        println!(
            "layout {name:>6} (p = {}): {:.2} ms",
            1usize << small_dim,
            hc3.elapsed_us() / 1e3
        );
    }
}
