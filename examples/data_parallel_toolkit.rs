//! The data-parallel toolkit around the primitives: scans, segmented
//! scans, stream compaction, histograms, and pointer jumping — the
//! Connection Machine idioms the paper's authors built their programming
//! model from, all running on the same simulated machine.
//!
//! ```text
//! cargo run --release --example data_parallel_toolkit
//! ```

use four_vmp::algos::histogram::{histogram_dense, histogram_sparse};
use four_vmp::algos::listrank::{list_rank, random_list};
use four_vmp::core::elem::Sum;
use four_vmp::core::scan::{pack, scan_inclusive, segmented_reduce};
use four_vmp::hypercube::Cube;
use four_vmp::prelude::*;

fn main() {
    let dim = 6u32;
    let grid = ProcGrid::square(Cube::new(dim));
    println!("machine: p = {} processors\n", 1usize << dim);

    // --- scans -------------------------------------------------------
    let n = 64usize;
    let layout = VectorLayout::linear(n, grid.clone(), Dist::Block);
    let v = DistVector::from_fn(layout.clone(), |i| (i + 1) as i64);
    let hc = &mut Hypercube::cm2(dim);
    let prefix = scan_inclusive(hc, &v, Sum);
    println!(
        "scan:      sum of 1..={n} via parallel prefix = {} ({:.1} us simulated)",
        prefix.get(n - 1),
        hc.elapsed_us()
    );

    // --- segmented reduce ---------------------------------------------
    let flags = DistVector::from_fn(layout.clone(), |i| i % 16 == 0);
    hc.reset();
    let seg = segmented_reduce(hc, &v, &flags, Sum);
    println!(
        "segmented: four 16-element segment sums = [{}, {}, {}, {}]",
        seg.get(0),
        seg.get(16),
        seg.get(32),
        seg.get(48)
    );

    // --- pack (stream compaction) --------------------------------------
    let mask = DistVector::from_fn(layout, |i| (i + 1) % 7 == 0);
    hc.reset();
    let multiples = pack(hc, &v, &mask);
    println!(
        "pack:      multiples of 7 in 1..={n}: {:?} ({} kept)",
        multiples.to_dense(),
        multiples.n()
    );

    // --- histogram ------------------------------------------------------
    let values: Vec<usize> = (0..256).map(|i| (i * i) % 16).collect();
    let hv = DistVector::from_slice(
        VectorLayout::linear(values.len(), grid.clone(), Dist::Block),
        &values,
    );
    let mut hd = Hypercube::cm2(dim);
    let dense = histogram_dense(&mut hd, &hv, 16);
    let mut hs = Hypercube::cm2(dim);
    let sparse = histogram_sparse(&mut hs, &hv, 16);
    assert_eq!(dense, sparse);
    println!(
        "histogram: 256 values into 16 bins, dense {:.1} us vs sparse {:.1} us; mode bin = {}",
        hd.elapsed_us(),
        hs.elapsed_us(),
        dense.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(b, _)| b).expect("nonempty")
    );

    // --- pointer jumping -------------------------------------------------
    let m = 128usize;
    let next = random_list(m, 42);
    let nv = DistVector::from_slice(VectorLayout::linear(m, grid, Dist::Block), &next);
    let mut hl = Hypercube::cm2(dim);
    let ranks = list_rank(&mut hl, &nv);
    let head = (0..m).find(|&i| ranks.get(i) == m - 1).expect("a head exists");
    println!(
        "listrank:  {m}-element random list ranked in lg(n) rounds; head = element {head} \
         ({:.1} us, {} supersteps)",
        hl.elapsed_us(),
        hl.counters().message_steps
    );
}
