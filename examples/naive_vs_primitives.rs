//! The paper's headline engineering result: the primitive-based
//! implementation beats the naive general-router implementation by
//! almost an order of magnitude. Same data, same results, different
//! communication structure.
//!
//! ```text
//! cargo run --release --example naive_vs_primitives [n] [cube_dim]
//! ```

use four_vmp::core::elem::Sum;
use four_vmp::core::{naive, primitives};
use four_vmp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let dim: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let grid = ProcGrid::square(vmp_cube(dim));
    let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| {
        ((i * 31 + j * 17) % 101) as f64 / 101.0
    });
    println!("n = {n}, p = {}, m/p = {}\n", 1usize << dim, (n * n) >> dim);
    println!("{:<22} {:>12} {:>12} {:>9}", "primitive", "naive", "blocked", "speedup");

    // reduce
    let mut hn = Hypercube::cm2(dim);
    let vn = naive::naive_reduce(&mut hn, &a, Axis::Row, Sum);
    let mut ho = Hypercube::cm2(dim);
    let vo = primitives::reduce(&mut ho, &a, Axis::Row, Sum);
    assert_eq!(vn.to_dense(), vo.to_dense(), "identical results");
    report("reduce", &hn, &ho);

    // distribute (from a concentrated source: the hot-spot case)
    let mut hc = Hypercube::cm2(dim);
    let conc = primitives::extract(&mut hc, &a, Axis::Row, 0);
    let mut hn = Hypercube::cm2(dim);
    let mn = naive::naive_distribute(&mut hn, &conc, n, Dist::Cyclic);
    let mut ho = Hypercube::cm2(dim);
    let mo = primitives::distribute(&mut ho, &conc, n, Dist::Cyclic);
    assert_eq!(mn.to_dense(), mo.to_dense());
    report("distribute", &hn, &ho);

    // extract + replicate (the pivot-row fan-out)
    let mut hn = Hypercube::cm2(dim);
    let en = naive::naive_extract_replicated(&mut hn, &a, Axis::Row, n / 2);
    let mut ho = Hypercube::cm2(dim);
    let eo = primitives::extract_replicated(&mut ho, &a, Axis::Row, n / 2);
    assert_eq!(en.to_dense(), eo.to_dense());
    report("extract+replicate", &hn, &ho);

    // insert
    let mut m1 = a.clone();
    let mut hn = Hypercube::cm2(dim);
    naive::naive_insert(&mut hn, &mut m1, Axis::Row, 1, &eo);
    let mut m2 = a.clone();
    let mut ho = Hypercube::cm2(dim);
    primitives::insert(&mut ho, &mut m2, Axis::Row, 1, &eo);
    assert_eq!(m1.to_dense(), m2.to_dense());
    report("insert", &hn, &ho);

    println!("\nwhy: the naive version injects every element into the general router");
    println!("individually (one start-up each, hot-spot serialisation at the");
    println!("destinations); the primitives move blocked messages down balanced");
    println!("spanning trees — lg p start-ups total.");
}

fn report(name: &str, naive: &Hypercube, opt: &Hypercube) {
    let (tn, to) = (naive.elapsed_us(), opt.elapsed_us().max(1e-9));
    println!("{name:<22} {:>10.1}us {:>10.1}us {:>8.1}x", tn, to, tn / to);
}

fn vmp_cube(dim: u32) -> four_vmp::hypercube::Cube {
    four_vmp::hypercube::Cube::new(dim)
}
