//! Offline stand-in for the subset of `criterion` this workspace uses.
//! Each benchmark closure is warmed up once and then timed over a small
//! fixed number of iterations; mean wall-clock time per iteration is
//! printed. No statistics, plots, or baselines — just enough to keep
//! `cargo bench` compiling and producing indicative numbers offline.

use std::fmt::Display;
use std::time::Instant;

/// Iterations timed per benchmark (after one untimed warm-up call).
const TIMED_ITERS: u32 = 10;

/// Top-level driver mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().label), |b| f(b));
        self
    }

    /// Run a parameterised benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// End the group (no-op; reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter value into an id.
    pub fn new<P: Display>(name: &str, param: P) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    /// An id carrying only a parameter value (upstream
    /// `BenchmarkId::from_parameter`).
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then [`TIMED_ITERS`] timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = TIMED_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0, iters: 1 };
    f(&mut b);
    let per_iter_ns = b.elapsed_ns / u128::from(b.iters.max(1));
    println!("bench {label:<56} {per_iter_ns:>12} ns/iter (offline stand-in)");
}

/// Prevent the optimiser from deleting a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("square", 7u32), &7u32, |b, &n| b.iter(|| n * n));
        g.bench_function("add", |b| b.iter(|| 1u64 + 2));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_harness_run() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(3u8)));
    }
}
