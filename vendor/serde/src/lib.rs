//! Offline stand-in for the subset of `serde` this workspace uses: the
//! marker traits plus `#[derive(Serialize, Deserialize)]`. `Serialize`
//! is blanket-implemented over `Debug` — every derived type here also
//! derives `Debug` — and `serde_json`'s stand-in renders through it.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serialisable values; satisfied by any `Debug` type.
pub trait Serialize: std::fmt::Debug {}
impl<T: std::fmt::Debug + ?Sized> Serialize for T {}

/// Marker for deserialisable values; nothing in this workspace
/// deserialises, so it carries no methods.
pub trait Deserialize<'de> {}
impl<'de, T> Deserialize<'de> for T {}
