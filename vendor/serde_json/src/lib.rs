//! Offline stand-in for the one `serde_json` entry point this workspace
//! uses. Without the real serde data model it converts the value's
//! pretty `Debug` form into JSON: struct names are dropped, field names
//! become quoted keys, tuples become arrays, `Some(x)` unwraps and
//! `None` maps to `null`. This covers any type whose `Debug` output is
//! built from strings, numbers, bools, lists, tuples and structs —
//! which is every type the workspace serialises.

use serde::Serialize;

/// Render `value` as pretty-printed JSON (via its `Debug` form).
///
/// # Errors
/// Fails only if the `Debug` output does not follow the standard
/// derived grammar (e.g. a hand-written `Debug` impl emitting free
/// text).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let debug = format!("{value:#?}");
    let mut p = Parser { src: debug.as_bytes(), pos: 0 };
    let mut out = String::with_capacity(debug.len());
    p.value(&mut out, 0)?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(Error(()));
    }
    Ok(out)
}

/// Error type mirroring `serde_json::Error`: produced when a `Debug`
/// rendering cannot be mapped onto the JSON data model.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stand-in: Debug output is not JSON-mappable")
    }
}

impl std::error::Error for Error {}

/// Recursive-descent parser over derived `Debug` output.
struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(()))
        }
    }

    /// One Debug value → JSON appended to `out`.
    fn value(&mut self, out: &mut String, depth: usize) -> Result<(), Error> {
        self.skip_ws();
        match self.peek().ok_or(Error(()))? {
            b'"' => self.string(out),
            b'[' => self.seq(out, depth, b'[', b']'),
            b'(' => self.seq(out, depth, b'(', b')'),
            b'{' => self.braced(out, depth),
            c if c == b'-' || c.is_ascii_digit() => {
                self.number(out);
                Ok(())
            }
            c if c.is_ascii_alphabetic() || c == b'_' => self.ident_led(out, depth),
            _ => Err(Error(())),
        }
    }

    /// Rust string literal → JSON string (escapes re-encoded).
    fn string(&mut self, out: &mut String) -> Result<(), Error> {
        self.expect(b'"')?;
        out.push('"');
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => {
                    out.push('"');
                    return Ok(());
                }
                b'\\' => {
                    let esc = self.peek().ok_or(Error(()))?;
                    self.pos += 1;
                    match esc {
                        b'"' | b'\\' => {
                            out.push('\\');
                            out.push(esc as char);
                        }
                        b'n' => out.push_str("\\n"),
                        b't' => out.push_str("\\t"),
                        b'r' => out.push_str("\\r"),
                        b'0' => out.push_str("\\u0000"),
                        b'\'' => out.push('\''),
                        b'u' => {
                            // \u{XXXX} → \uXXXX (or a surrogate pair).
                            self.expect(b'{')?;
                            let start = self.pos;
                            while self.peek().is_some_and(|b| b != b'}') {
                                self.pos += 1;
                            }
                            let hex = std::str::from_utf8(&self.src[start..self.pos])
                                .map_err(|_| Error(()))?;
                            self.expect(b'}')?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| Error(()))?;
                            let ch = char::from_u32(cp).ok_or(Error(()))?;
                            let mut buf = [0u16; 2];
                            for unit in ch.encode_utf16(&mut buf) {
                                out.push_str(&format!("\\u{unit:04x}"));
                            }
                        }
                        _ => return Err(Error(())),
                    }
                }
                _ if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8 sequence: pass through intact.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| Error(()))?,
                    );
                }
            }
        }
        Err(Error(()))
    }

    fn number(&mut self, out: &mut String) {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        // NaN/inf Debug-print as idents and fail in `ident_led`, which
        // is the correct strict-JSON behaviour.
        out.push_str(std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("0"));
    }

    /// `[a, b]` or tuple `(a, b)` → JSON array.
    fn seq(&mut self, out: &mut String, depth: usize, open: u8, close: u8) -> Result<(), Error> {
        self.expect(open)?;
        self.skip_ws();
        if self.peek() == Some(close) {
            self.pos += 1;
            out.push_str("[]");
            return Ok(());
        }
        out.push_str("[\n");
        loop {
            indent(out, depth + 1);
            self.value(out, depth + 1)?;
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                self.skip_ws();
            }
            if self.peek() == Some(close) {
                self.pos += 1;
                out.push('\n');
                indent(out, depth);
                out.push(']');
                return Ok(());
            }
            out.push_str(",\n");
        }
    }

    /// Anonymous `{ field: value, .. }` body → JSON object.
    fn braced(&mut self, out: &mut String, depth: usize) -> Result<(), Error> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            out.push_str("{}");
            return Ok(());
        }
        out.push_str("{\n");
        loop {
            indent(out, depth + 1);
            let name = self.ident()?;
            out.push('"');
            out.push_str(&name);
            out.push_str("\": ");
            self.skip_ws();
            self.expect(b':')?;
            self.value(out, depth + 1)?;
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                self.skip_ws();
            }
            if self.peek() == Some(b'}') {
                self.pos += 1;
                out.push('\n');
                indent(out, depth);
                out.push('}');
                return Ok(());
            }
            out.push_str(",\n");
        }
    }

    fn ident(&mut self) -> Result<String, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error(()));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| Error(()))?.to_string())
    }

    /// A value starting with an identifier: `Name { .. }` (struct, name
    /// dropped), `Name(..)` (tuple struct → array; `Some(x)` unwraps),
    /// `true`/`false`, `None` → `null`, a bare unit variant → its name
    /// as a string.
    fn ident_led(&mut self, out: &mut String, depth: usize) -> Result<(), Error> {
        let name = self.ident()?;
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.braced(out, depth),
            Some(b'(') => {
                if name == "Some" {
                    self.expect(b'(')?;
                    self.value(out, depth)?;
                    self.skip_ws();
                    if self.peek() == Some(b',') {
                        self.pos += 1;
                        self.skip_ws();
                    }
                    self.expect(b')')
                } else {
                    self.seq(out, depth, b'(', b')')
                }
            }
            _ => {
                match name.as_str() {
                    "true" | "false" => out.push_str(&name),
                    "None" => out.push_str("null"),
                    _ => {
                        out.push('"');
                        out.push_str(&name);
                        out.push('"');
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::to_string_pretty;

    #[derive(Debug)]
    #[allow(dead_code)] // read only through Debug
    struct Inner {
        label: String,
        values: Vec<u32>,
    }

    #[derive(Debug)]
    #[allow(dead_code)] // read only through Debug
    struct Outer {
        id: String,
        ok: bool,
        ratio: f64,
        maybe: Option<usize>,
        none: Option<usize>,
        inner: Vec<Inner>,
    }

    #[test]
    fn structs_render_as_json_objects() {
        let v = Outer {
            id: "T1 \"quoted\"\nline".to_string(),
            ok: true,
            ratio: 1.5,
            maybe: Some(4),
            none: None,
            inner: vec![Inner { label: "a/b".to_string(), values: vec![1, 2, 3] }],
        };
        let json = to_string_pretty(&v).expect("convertible");
        assert!(json.contains("\"id\": \"T1 \\\"quoted\\\"\\nline\""), "{json}");
        assert!(json.contains("\"ok\": true"), "{json}");
        assert!(json.contains("\"ratio\": 1.5"), "{json}");
        assert!(json.contains("\"maybe\": 4"), "{json}");
        assert!(json.contains("\"none\": null"), "{json}");
        assert!(json.contains("\"values\": [\n"), "{json}");
        assert!(!json.contains("Outer") && !json.contains("Inner"), "{json}");
    }

    #[test]
    fn lists_tuples_and_empties_render() {
        let json = to_string_pretty(&vec![(1u8, "x"), (2, "y")]).expect("convertible");
        assert_eq!(json, "[\n  [\n    1,\n    \"x\"\n  ],\n  [\n    2,\n    \"y\"\n  ]\n]");
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).expect("ok"), "[]");
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let json = to_string_pretty(&vec!["α→β".to_string(), "tab\there".to_string()])
            .expect("convertible");
        assert!(json.contains("α→β"), "{json}");
        assert!(json.contains("tab\\there"), "{json}");
    }
}
