//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: a seedable RNG (`rngs::StdRng`) and uniform range sampling
//! (`Rng::gen_range`). The stream differs from upstream `rand`; callers
//! in this repository only rely on *seeded determinism*, which holds.

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface: everything in this workspace goes through
/// [`Rng::gen_range`].
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E3779B97F4A7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Alias kept for API compatibility; same generator as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }
}
