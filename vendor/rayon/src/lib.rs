//! Offline stand-in for the subset of `rayon` this workspace uses.
//! Executes sequentially: the SPMD per-node local phases are independent
//! and bit-identical either way; only host wall-clock parallelism is
//! lost, which no test or simulated-cost result depends on.

/// Mirrors `rayon::current_num_threads()`. The stand-in executes on the
/// calling thread only, so the pool size is always 1 — callers use this
/// to skip fan-out bookkeeping that cannot pay for itself here.
#[must_use]
pub fn current_num_threads() -> usize {
    1
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    /// `into_par_iter()` — sequential stand-in returning the plain
    /// iterator, whose `map`/`collect`/`for_each` then come from `std`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The "parallel" iterator type (the sequential iterator here).
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter_mut()` on slices — sequential stand-in.
    pub trait ParallelSliceMut<T> {
        /// Mutable iteration over the slice.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_visits_every_element() {
        let mut v = vec![1u32, 2, 3];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i as u32);
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn into_par_iter_collects() {
        let out: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }
}
