//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in: the traits are blanket-implemented in the `serde` stub, so
//! the derives only need to exist and accept the attribute syntax.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; emits nothing (blanket impl covers it).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; emits nothing (blanket impl covers it).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
