//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, `prop_assert*`, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`Just`],
//! [`prop_oneof!`], `bool::ANY` and [`ProptestConfig::with_cases`].
//!
//! Sampling is deterministic — each test's RNG is seeded from a hash of
//! the test name, so a failing case reproduces on every run. There is no
//! shrinking: a failure reports the sampled inputs via the panic message
//! of the underlying `assert!`.

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test-identity hash.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the test name, used to seed [`TestRng`].
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking: `sample` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a follow-on strategy from each value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy handle.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe mirror of [`Strategy`] (sampling only).
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.as_ref().sample_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between equally-weighted alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}
int_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy_impls {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy_impls! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// The test-defining macro: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(binding in strategy, ...) { body }`
/// items. Each test runs `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            // `#[test]` (and any doc comments) arrive via the captured
            // attributes, mirroring upstream proptest's grammar.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_seed($crate::seed_for(stringify!($name)));
                for _case in 0..config.cases {
                    let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assertion macro mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            (a, b) in (0u32..=5, 1usize..17),
            c in -3i64..3,
        ) {
            prop_assert!(a <= 5);
            prop_assert!((1..17).contains(&b));
            prop_assert!((-3..3).contains(&c));
        }

        #[test]
        fn oneof_map_and_flat_map_compose(
            v in prop_oneof![Just(1u8), Just(2u8)],
            w in (0u32..4).prop_flat_map(|n| (Just(n), 0u32..=n)).prop_map(|(n, k)| (n, k)),
        ) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(w.1 <= w.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut r1 = crate::TestRng::from_seed(crate::seed_for("x"));
        let mut r2 = crate::TestRng::from_seed(crate::seed_for("x"));
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
