//! Offline stand-in for the subset of [`loom`] this workspace uses.
//!
//! Upstream loom exhaustively explores thread interleavings under the
//! C11 memory model. This stand-in cannot do that without the real
//! scheduler, so it approximates: [`model`] re-runs the closure many
//! times on real OS threads, with the iteration count raised under
//! `--cfg loom` (the dedicated CI job) so scheduling noise gets many
//! chances to surface an ordering bug. The `thread`/`sync` modules
//! re-export the `std` equivalents, which keeps test sources identical
//! to what they would be against upstream loom — restoring the registry
//! crate requires no source change outside `vendor/`.
//!
//! [`loom`]: https://docs.rs/loom

/// How many times [`model`] re-runs its closure: enough repetition for
/// OS scheduling jitter to explore distinct orderings, without making
/// plain `cargo test` noticeably slower. The dedicated CI job compiles
/// with `--cfg loom` for a deeper sweep.
#[cfg(loom)]
pub const MODEL_ITERATIONS: usize = 256;
#[cfg(not(loom))]
pub const MODEL_ITERATIONS: usize = 8;

/// Run `f` repeatedly, as upstream `loom::model` runs it once per
/// explored interleaving. Panics propagate, failing the enclosing test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..MODEL_ITERATIONS {
        f();
    }
}

/// `std::thread` subset (upstream loom shadows it with a modelled one).
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// `std::sync` subset (upstream loom shadows these with modelled ones).
pub mod sync {
    pub use std::sync::{Arc, Mutex};

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_configured_iteration_count() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        super::model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), super::MODEL_ITERATIONS);
    }
}
